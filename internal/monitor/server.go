package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"loadimb/internal/majorize"
	"loadimb/internal/temporal"
	"loadimb/internal/tracefmt"
)

// A SnapshotSource yields the freshest snapshot of a live measurement:
// the Collector is one (it folds its buffered events on demand), and the
// federation scraper (internal/federate) is another (it merges the cubes
// most recently fetched from many collectors). The exported handlers
// below serve any source, so one exposition path covers both the
// per-process and the cluster-wide view.
type SnapshotSource interface {
	// Snapshot returns the current snapshot; it must never return nil.
	Snapshot() *Snapshot
}

// ETag returns the snapshot's entity tag: the (boot, generation) pair
// that identifies its content. Gen alone would be ambiguous — it
// restarts from zero with the publishing process — so the boot nonce is
// part of the tag; a scraper that caches on the ETag therefore refetches
// after a restart instead of treating the reset as "unchanged". Empty
// for snapshots without a boot nonce (hand-built test literals).
func (s *Snapshot) ETag() string {
	if s.Boot == 0 {
		return ""
	}
	return fmt.Sprintf("\"b%x-g%d\"", s.Boot, s.Gen)
}

// serveCached stamps the snapshot's ETag on the response and, when the
// request's If-None-Match already names it, answers 304 Not Modified and
// reports true — the incremental-scrape fast path: a federation poll of
// an idle endpoint costs a header exchange, not a reserialization of the
// whole document.
func serveCached(w http.ResponseWriter, r *http.Request, snap *Snapshot) bool {
	tag := snap.ETag()
	if tag == "" {
		return false
	}
	w.Header().Set("ETag", tag)
	if r.Header.Get("If-None-Match") == tag {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// MetricsHandler serves the Prometheus text exposition of the source's
// snapshot: every paper index (ID_ij, ID_A/SID_A, ID_C/SID_C, ID_P), the
// Gini coefficient, the cube marginals and the collector counters.
func MetricsHandler(src SnapshotSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteMetrics(w, snap); err != nil {
			// Headers are already sent; the scraper will see a
			// truncated body and retry.
			return
		}
	}
}

// CubeHandler serves the snapshot cube as tracefmt JSON, answering 503
// until the first event has been folded.
func CubeHandler(src SnapshotSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if snap.Cube == nil {
			http.Error(w, "no events collected yet", http.StatusServiceUnavailable)
			return
		}
		if serveCached(w, r, snap) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tracefmt.WriteCubeJSON(w, snap.Cube)
	}
}

// LorenzHandler serves the Lorenz curve and Gini coefficient of the
// snapshot's per-processor total times.
func LorenzHandler(src SnapshotSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		totals := snap.ProcTotals()
		if totals == nil {
			http.Error(w, "no events collected yet", http.StatusServiceUnavailable)
			return
		}
		points, err := majorize.Lorenz(totals)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, lorenzPayload{
			Procs:  len(totals),
			Points: points,
			Gini:   giniOf(totals),
		})
	}
}

// TimelineHandler serves the windowed imbalance trajectory of the
// snapshot; window is the configured window width echoed in the payload
// (0 when windowing is disabled). A source whose width is only known at
// scrape time — the federation merger inherits it from its endpoints —
// passes 0 and the snapshot's own series width is echoed instead.
func TimelineHandler(src SnapshotSource, window float64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if window == 0 && snap.Series != nil {
			window = snap.Series.Window
		}
		if serveCached(w, r, snap) {
			return
		}
		p := timelinePayload{
			Window:  window,
			Windows: snap.Windows,
		}
		if snap.Series != nil && snap.Series.CoarseWindow > 0 {
			p.CoarseWindow = snap.Series.CoarseWindow
			p.RingStart = snap.Series.RingStart
			p.Coarse = snap.Coarse
		}
		writeJSON(w, p)
	}
}

// WindowsHandler serves the snapshot's raw window series — per-window
// per-processor busy vectors rather than summaries. This is the document
// the federation layer scrapes and merges: summaries cannot be combined
// across jobs, busy vectors can, so cluster-wide per-window indices come
// out exact. It answers 503 while windowing is disabled.
func WindowsHandler(src SnapshotSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if snap.Series == nil {
			http.Error(w, "windowing disabled", http.StatusServiceUnavailable)
			return
		}
		if serveCached(w, r, snap) {
			return
		}
		writeJSON(w, snap.Series)
	}
}

// PhasesHandler serves the live phase segmentation of the snapshot's
// window trajectory: every detected phase with its time bounds, label,
// per-phase dispersion indices and hot activities, plus the phase the
// run is currently in. The phases are the exact PELT optimum of the
// trajectory so far — the same segmentation `imba -phases` finds on the
// saved trace — maintained incrementally by the collector. It answers
// 503 while windowing is disabled and an empty phase list before the
// first non-empty window.
func PhasesHandler(src SnapshotSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if snap.Series == nil {
			http.Error(w, "windowing disabled", http.StatusServiceUnavailable)
			return
		}
		if serveCached(w, r, snap) {
			return
		}
		p := phasesPayload{
			Window: snap.Series.Window,
			Phases: snap.Phases,
		}
		if n := len(snap.Phases); n > 0 {
			p.Current = &snap.Phases[n-1]
			p.Changes = n - 1
		}
		writeJSON(w, p)
	}
}

// DiagnoseHandler serves the automatic performance diagnosis of the
// snapshot: per-phase rank-similarity cohorts and divergence findings
// ("rank 17 diverged from its 63-rank cohort in phase 3 ..."), the
// programmatic root-cause layer over the phase segmentation. The report
// is memoized per fold generation, so scraping it is as cheap as the
// other endpoints while the run is quiet. It answers 503 while
// windowing is disabled.
func DiagnoseHandler(src SnapshotSource) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := src.Snapshot()
		if snap.Series == nil {
			http.Error(w, "windowing disabled", http.StatusServiceUnavailable)
			return
		}
		if serveCached(w, r, snap) {
			return
		}
		writeJSON(w, snap.Diagnosis())
	}
}

// A HandlerOption customizes the endpoint set NewHandler builds.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	ingest *IngestServer
}

// WithIngest attaches an ingest server's counters to the handler's
// /metrics exposition (the loadimb_ingest_* families).
func WithIngest(s *IngestServer) HandlerOption {
	return func(cfg *handlerConfig) { cfg.ingest = s }
}

// NewHandler returns the monitoring endpoint set for a collector:
//
//	/metrics        Prometheus text exposition of every paper index
//	/cube.json      the live measurement cube (tracefmt JSON)
//	/lorenz.json    Lorenz curve of the per-processor total times
//	/timeline.json  windowed imbalance trajectory (temporal analysis)
//	/windows.json   raw per-window busy vectors (federation merge input)
//	/phases.json    live phase detection over the window trajectory
//	/diagnose.json  automatic diagnosis (rank cohorts + divergence findings)
//	/healthz        liveness probe (always 200)
//	/               embedded live dashboard
//	/debug/pprof/   Go runtime profiles of the monitored process
//
// Every data endpoint folds the freshest events before answering, so a
// scrape always reflects the run up to the moment of the request.
func NewHandler(c *Collector, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	if cfg.ingest != nil {
		ing := cfg.ingest
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			snap := c.Snapshot()
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := WriteMetrics(w, snap); err != nil {
				return
			}
			_ = ing.WriteMetrics(w)
		})
	} else {
		mux.Handle("/metrics", MetricsHandler(c))
	}
	mux.Handle("/cube.json", CubeHandler(c))
	mux.Handle("/lorenz.json", LorenzHandler(c))
	mux.Handle("/timeline.json", TimelineHandler(c, c.window))
	mux.Handle("/windows.json", WindowsHandler(c))
	mux.Handle("/phases.json", PhasesHandler(c))
	mux.Handle("/diagnose.json", DiagnoseHandler(c))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
	// Explicit pprof wiring: the handler set must work on any mux, not
	// just http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// lorenzPayload is the /lorenz.json document.
type lorenzPayload struct {
	// Procs is the number of processors.
	Procs int `json:"procs"`
	// Points holds the Lorenz curve: Points[k] is the fraction of the
	// total time accounted for by the k least-loaded processors.
	Points []float64 `json:"points"`
	// Gini is the Gini coefficient of the same vector.
	Gini float64 `json:"gini"`
}

// timelinePayload is the /timeline.json document.
type timelinePayload struct {
	// Window is the configured window width in virtual seconds; 0 when
	// windowing is disabled.
	Window float64 `json:"window"`
	// Windows is the per-window imbalance trajectory. For a bounded run
	// that outgrew its window cap this is the retained full-resolution
	// ring; the fields below carry the decimated history. They are
	// omitted while nothing has been decimated, keeping the wire format
	// byte-identical to the pre-retention one for bounded-fit runs.
	Windows []WindowStat `json:"windows"`
	// CoarseWindow is the decimated tail's window width in virtual
	// seconds; 0 while nothing has been decimated.
	CoarseWindow float64 `json:"coarse_window,omitempty"`
	// RingStart is the base window index where full resolution begins.
	RingStart int `json:"ring_start,omitempty"`
	// Coarse is the pre-ring trajectory at CoarseWindow resolution.
	Coarse []WindowStat `json:"coarse,omitempty"`
}

// phasesPayload is the /phases.json document.
type phasesPayload struct {
	// Window is the window width in virtual seconds.
	Window float64 `json:"window"`
	// Current is the phase the run is in right now — the last detected
	// phase; null before the first non-empty window.
	Current *temporal.PhaseSummary `json:"current"`
	// Changes is the number of phase boundaries detected so far.
	Changes int `json:"changes"`
	// Phases is the full segmentation of the trajectory so far, in time
	// order — the boundary history.
	Phases []temporal.PhaseSummary `json:"phases"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
