package monitor

import (
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"loadimb/internal/cfd"
	"loadimb/internal/trace"
)

// BenchmarkCollectorRecord measures the instrumentation hot path: one
// Record call on an otherwise idle collector. The observability budget is
// < 1 us/event (see EXPERIMENTS.md "Monitoring overhead"). This is the
// worst case — nothing ever drains the shard, so the cost is dominated by
// amortized buffer growth; with periodic snapshots draining the buffers
// (the deployment shape, BenchmarkCollectorRecordWindowed) the per-event
// cost is several times lower.
func BenchmarkCollectorRecord(b *testing.B) {
	c := NewCollector(Options{Shards: 16})
	e := trace.Event{Rank: 3, Region: "loop 1", Activity: "computation", Start: 1, End: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Record(e)
	}
	if c.Events() != uint64(b.N) {
		b.Fatal("lost events")
	}
}

// BenchmarkCollectorRecordParallel measures Record under contention from
// many rank goroutines, the deployment shape of the daemon.
func BenchmarkCollectorRecordParallel(b *testing.B) {
	c := NewCollector(Options{Shards: 16})
	var rank atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		r := int(rank.Add(1)) % 64
		e := trace.Event{Rank: r, Region: "loop 1", Activity: "computation", Start: 1, End: 2}
		for pb.Next() {
			c.Record(e)
		}
	})
}

// BenchmarkCollectorRecordWindowed includes the windowing fold cost paid
// at snapshot time, amortized per recorded event.
func BenchmarkCollectorRecordWindowed(b *testing.B) {
	c := NewCollector(Options{Shards: 16, Window: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := float64(i%100) / 10
		c.Record(trace.Event{Rank: i % 16, Region: "loop 1", Activity: "computation", Start: s, End: s + 0.05})
		if i%1024 == 1023 {
			c.Snapshot()
		}
	}
}

// BenchmarkRecordBatch measures the zero-alloc batched publish path: one
// SPSC producer streaming 512-event batches. Each iteration is one event,
// so ns/op compares directly against BenchmarkCollectorRecord — the
// acceptance floor is a >= 5x improvement with 0 allocs/op (the alloc
// guard proper is TestProducerRecordBatchAllocs). The periodic ring drain
// runs off the timer: like the Record baseline, this isolates the
// producer-side publish cost.
func BenchmarkRecordBatch(b *testing.B) {
	c := NewCollector(Options{Shards: 1})
	p := c.Producer(ProducerOptions{Ring: 1 << 16})
	batch := make([]trace.Event, 512)
	for i := range batch {
		batch[i] = trace.Event{Rank: 3, Region: "loop 1", Activity: "computation", Start: 1, End: 2}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		k := len(batch)
		if rem := b.N - n; k > rem {
			k = rem
		}
		p.RecordBatch(batch[:k])
		n += k
		if p.Pending() > 1<<15 {
			b.StopTimer()
			c.Fold()
			b.StartTimer()
		}
	}
	b.StopTimer()
	c.Fold()
	if c.Events() != uint64(b.N) {
		b.Fatal("lost events")
	}
}

// BenchmarkIngestWire measures the full remote ingest pipeline over a
// Unix domain socket: client-side frame encoding, the socket, server-side
// decoding into a producer ring and the background fold, pipelined across
// goroutines. Each iteration is one event, so the sustained wire rate is
// 1e9/ns_per_op events/sec; the acceptance floor is 10M events/sec (see
// BENCH_ingest.json).
func BenchmarkIngestWire(b *testing.B) {
	c := NewCollector(Options{Shards: 1})
	srv := NewIngestServer(c, IngestOptions{})
	sock := filepath.Join(b.TempDir(), "bench.sock")
	if _, err := srv.Listen("unix:" + sock); err != nil {
		b.Fatal(err)
	}
	cl, err := DialIngest("unix:"+sock, ClientOptions{Batch: 4096, FlushInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]trace.Event, 4096)
	for i := range batch {
		s := float64(i) * 0.001
		batch[i] = trace.Event{Rank: i % 16, Region: "loop 1", Activity: "computation", Start: s, End: s + 0.001}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		k := len(batch)
		if rem := b.N - n; k > rem {
			k = rem
		}
		cl.RecordBatch(batch[:k])
		n += k
	}
	if err := cl.Flush(); err != nil {
		b.Fatal(err)
	}
	// The pipeline is only done when the collector has folded every event.
	for c.Events() < uint64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
	if err := cl.Close(); err != nil {
		b.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSelfInterference measures how much attaching the observer
// slows the observed program: one cfd run per iteration with (a) no sink,
// (b) an in-process collector, (c) the wire client streaming to a local
// ingest daemon. The interference ratio attached/detached (and
// wire/detached) is the self-interference figure recorded in
// BENCH_ingest.json — the cost of observation, in units of the
// uninstrumented run.
func BenchmarkSelfInterference(b *testing.B) {
	cfg := cfd.Defaults()
	cfg.Procs = 8
	cfg.GridX, cfg.GridY = 128, 128
	cfg.Iterations = 5
	runWith := func(b *testing.B, sink trace.Sink) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Sink = sink
			if _, err := cfd.Run(c); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("detached", func(b *testing.B) { runWith(b, nil) })
	b.Run("attached", func(b *testing.B) {
		col := NewCollector(Options{Shards: 8})
		runWith(b, col)
	})
	b.Run("wire", func(b *testing.B) {
		col := NewCollector(Options{Shards: 8})
		srv := NewIngestServer(col, IngestOptions{})
		sock := filepath.Join(b.TempDir(), "interf.sock")
		if _, err := srv.Listen("unix:" + sock); err != nil {
			b.Fatal(err)
		}
		cl, err := DialIngest("unix:"+sock, ClientOptions{Batch: 4096, FlushInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		runWith(b, cl)
		b.StopTimer()
		if err := cl.Close(); err != nil {
			b.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSnapshot measures a full fold + publish on a paper-shaped cube
// (7 regions x 4 activities x 16 processors) with a fresh batch of
// events per iteration.
func BenchmarkSnapshot(b *testing.B) {
	regions := make([]string, 7)
	for i := range regions {
		regions[i] = "loop " + string(rune('1'+i))
	}
	activities := []string{"computation", "point-to-point", "collective", "synchronization"}
	c := NewCollector(Options{Regions: regions, Activities: activities})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 128; k++ {
			c.Record(trace.Event{
				Rank:     k % 16,
				Region:   regions[k%len(regions)],
				Activity: activities[k%len(activities)],
				Start:    float64(k),
				End:      float64(k) + 0.25,
			})
		}
		b.StartTimer()
		c.Snapshot()
	}
}
