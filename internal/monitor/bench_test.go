package monitor

import (
	"sync/atomic"
	"testing"

	"loadimb/internal/trace"
)

// BenchmarkCollectorRecord measures the instrumentation hot path: one
// Record call on an otherwise idle collector. The observability budget is
// < 1 us/event (see EXPERIMENTS.md "Monitoring overhead"). This is the
// worst case — nothing ever drains the shard, so the cost is dominated by
// amortized buffer growth; with periodic snapshots draining the buffers
// (the deployment shape, BenchmarkCollectorRecordWindowed) the per-event
// cost is several times lower.
func BenchmarkCollectorRecord(b *testing.B) {
	c := NewCollector(Options{Shards: 16})
	e := trace.Event{Rank: 3, Region: "loop 1", Activity: "computation", Start: 1, End: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Record(e)
	}
	if c.Events() != uint64(b.N) {
		b.Fatal("lost events")
	}
}

// BenchmarkCollectorRecordParallel measures Record under contention from
// many rank goroutines, the deployment shape of the daemon.
func BenchmarkCollectorRecordParallel(b *testing.B) {
	c := NewCollector(Options{Shards: 16})
	var rank atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		r := int(rank.Add(1)) % 64
		e := trace.Event{Rank: r, Region: "loop 1", Activity: "computation", Start: 1, End: 2}
		for pb.Next() {
			c.Record(e)
		}
	})
}

// BenchmarkCollectorRecordWindowed includes the windowing fold cost paid
// at snapshot time, amortized per recorded event.
func BenchmarkCollectorRecordWindowed(b *testing.B) {
	c := NewCollector(Options{Shards: 16, Window: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := float64(i%100) / 10
		c.Record(trace.Event{Rank: i % 16, Region: "loop 1", Activity: "computation", Start: s, End: s + 0.05})
		if i%1024 == 1023 {
			c.Snapshot()
		}
	}
}

// BenchmarkSnapshot measures a full fold + publish on a paper-shaped cube
// (7 regions x 4 activities x 16 processors) with a fresh batch of
// events per iteration.
func BenchmarkSnapshot(b *testing.B) {
	regions := make([]string, 7)
	for i := range regions {
		regions[i] = "loop " + string(rune('1'+i))
	}
	activities := []string{"computation", "point-to-point", "collective", "synchronization"}
	c := NewCollector(Options{Regions: regions, Activities: activities})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 128; k++ {
			c.Record(trace.Event{
				Rank:     k % 16,
				Region:   regions[k%len(regions)],
				Activity: activities[k%len(activities)],
				Start:    float64(k),
				End:      float64(k) + 0.25,
			})
		}
		b.StartTimer()
		c.Snapshot()
	}
}
