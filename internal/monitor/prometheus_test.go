package monitor

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"loadimb/internal/apps"
	"loadimb/internal/core"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// sample is one parsed exposition line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	lineRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
	labelRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

func unescapeLabel(s string) string {
	r := strings.NewReplacer(`\\`, "\x00", `\"`, `"`, `\n`, "\n")
	return strings.ReplaceAll(r.Replace(s), "\x00", `\`)
}

// parseExposition parses Prometheus text format strictly: every
// non-comment line must be a well-formed sample with a finite value, and
// every sample must be preceded by a TYPE declaration of its family.
func parseExposition(t *testing.T, text string) []sample {
	t.Helper()
	typed := map[string]string{}
	var out []sample
	for n, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[3] != "gauge" && fields[3] != "counter") {
				t.Fatalf("line %d: malformed TYPE: %q", n+1, line)
			}
			typed[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("line %d: unexpected comment %q", n+1, line)
			}
			continue
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample: %q", n+1, line)
		}
		typ, ok := typed[m[1]]
		if !ok {
			t.Fatalf("line %d: sample %q has no TYPE declaration", n+1, m[1])
		}
		if typ == "counter" && !strings.HasSuffix(m[1], "_total") {
			t.Errorf("counter %q does not end in _total", m[1])
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", n+1, m[3], err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("line %d: non-finite value %g", n+1, v)
		}
		s := sample{name: m[1], labels: map[string]string{}, value: v}
		if m[2] != "" {
			rest := m[2]
			for _, lm := range labelRe.FindAllStringSubmatch(rest, -1) {
				s.labels[lm[1]] = unescapeLabel(lm[2])
			}
		}
		out = append(out, s)
	}
	return out
}

// key canonicalizes a sample identity for lookup.
func (s sample) key() string {
	pairs := make([]string, 0, len(s.labels))
	for k, v := range s.labels {
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return s.name + "|" + strings.Join(pairs, ",")
}

func indexSamples(samples []sample) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.key()] = s.value
	}
	return out
}

func lookup(t *testing.T, m map[string]float64, name string, labels ...string) float64 {
	t.Helper()
	s := sample{name: name, labels: map[string]string{}}
	for i := 0; i+1 < len(labels); i += 2 {
		s.labels[labels[i]] = labels[i+1]
	}
	v, ok := m[s.key()]
	if !ok {
		t.Fatalf("metric %s{%v} not exposed", name, s.labels)
	}
	return v
}

// TestMetricsMatchOfflineAnalysis is the golden test of the exposition:
// the gauges must reproduce core.Analyze on the same cube to 1e-9.
func TestMetricsMatchOfflineAnalysis(t *testing.T) {
	cfg := apps.DefaultMasterWorker()
	cfg.Procs = 5
	cfg.Tasks = 24
	c := NewCollector(Options{})
	cfg.Sink = c
	res, err := apps.MasterWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()

	var buf bytes.Buffer
	if err := WriteMetrics(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got := indexSamples(parseExposition(t, buf.String()))

	cube := snap.Cube
	analysis, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	check := func(what string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.12g, want %.12g", what, got, want)
		}
	}
	check("program time", lookup(t, got, MetricProgramTime), cube.ProgramTime())
	check("instrumented", lookup(t, got, MetricInstrumented), cube.RegionsTotal())
	check("procs", lookup(t, got, MetricProcs), float64(cube.NumProcs()))
	check("events", lookup(t, got, MetricEventsTotal), float64(res.Log.Len()))

	regions, activities := cube.Regions(), cube.Activities()
	for _, a := range analysis.Activities {
		if !a.Defined {
			continue
		}
		check("id_a "+a.Name, lookup(t, got, MetricIDActivity, "activity", a.Name), a.ID)
		check("sid_a "+a.Name, lookup(t, got, MetricSIDActivity, "activity", a.Name), a.SID)
	}
	for _, r := range analysis.Regions {
		if !r.Defined {
			continue
		}
		check("id_c "+r.Name, lookup(t, got, MetricIDRegion, "region", r.Name), r.ID)
		check("sid_c "+r.Name, lookup(t, got, MetricSIDRegion, "region", r.Name), r.SID)
	}
	for i := range analysis.Cells {
		for j, cell := range analysis.Cells[i] {
			if !cell.Defined {
				continue
			}
			check(fmt.Sprintf("id_ij %d/%d", i, j),
				lookup(t, got, MetricIDCell, "region", regions[i], "activity", activities[j]),
				cell.ID)
		}
	}
	for i := range analysis.Processors.ByRegion {
		for p, d := range analysis.Processors.ByRegion[i] {
			if !d.Defined {
				continue
			}
			check(fmt.Sprintf("id_p %d/%d", i, p),
				lookup(t, got, MetricIDProc, "region", regions[i], "proc", strconv.Itoa(p)),
				d.ID)
		}
	}
	check("gini", lookup(t, got, MetricGini), stats.Gini.Of(snap.ProcTotals()))
}

func TestMetricsEmptySnapshot(t *testing.T) {
	c := NewCollector(Options{})
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := indexSamples(parseExposition(t, buf.String()))
	if v := lookup(t, got, MetricEventsTotal); v != 0 {
		t.Errorf("events_total = %g on empty collector", v)
	}
	for k := range got {
		if strings.HasPrefix(k, MetricIDRegion) {
			t.Errorf("empty collector exposed %s", k)
		}
	}
}

func TestMetricsLabelEscaping(t *testing.T) {
	c := NewCollector(Options{})
	evil := "loop \"7\"\\ has\nnewlines"
	c.Record(trace.Event{Rank: 0, Region: evil, Activity: "a", Start: 0, End: 1})
	c.Record(trace.Event{Rank: 1, Region: evil, Activity: "a", Start: 0, End: 2})
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())
	found := false
	for _, s := range samples {
		if s.name == MetricRegionSeconds && s.labels["region"] == evil {
			found = true
			if math.Abs(s.value-1.5) > 1e-12 {
				t.Errorf("region seconds = %g, want 1.5", s.value)
			}
		}
	}
	if !found {
		t.Fatalf("escaped region label did not round-trip; exposition:\n%s", buf.String())
	}
}
