// Package monitor turns the repository's post-mortem analysis pipeline
// into a live observability stack. A Collector is a concurrency-safe
// trace.Sink that instrumented programs (internal/mpi worlds, the
// internal/cfd solver, the internal/apps applications) stream their
// events into while they run; it folds them incrementally into a live
// measurement cube and publishes immutable snapshots that HTTP handlers
// (see NewHandler) expose as Prometheus gauges, raw cube JSON, Lorenz
// curve points and a windowed imbalance timeline.
//
// The design separates the hot path from the analysis path:
//
//   - Record appends the event to a sharded buffer under a per-shard
//     mutex — a few dozen nanoseconds, far below the sub-microsecond
//     budget of instrumentation (see BenchmarkCollectorRecord).
//   - RecordBatch amortizes those costs over whole batches (one lock
//     acquisition per same-shard run, one counter bump per batch), and a
//     Producer handle removes the locks entirely: a per-source SPSC ring
//     whose steady-state publish path performs zero heap allocations (see
//     ring.go and BenchmarkRecordBatch). The network ingest listener
//     (ingest.go) feeds one Producer per connection.
//   - Snapshot drains the shards and the producer rings, folds the
//     drained events into the running totals (per-cell wall clock sums,
//     Welford event-duration accumulators from internal/stats, per-window
//     processor loads) and publishes an immutable *Snapshot through an
//     atomic pointer. Drained buffers are recycled, so steady-state
//     collection reaches an allocation fixpoint.
//   - Latest returns the most recently published snapshot without taking
//     any lock, so readers never block writers and vice versa.
package monitor

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"loadimb/internal/stats"
	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

// Options configures a Collector. The zero value is usable: 8 shards, no
// preset dimension order, no temporal windows.
type Options struct {
	// Shards is the number of event buffers Record spreads load across;
	// it is rounded up to a power of two. 0 means 8.
	Shards int
	// Window is the width, in virtual seconds, of the temporal windows
	// the collector tracks per-processor load in (the imbalance
	// trajectory served at /timeline.json). 0 disables windowing.
	Window float64
	// Regions and Activities preset the cube dimension orders, so gauge
	// label sets stay stable from the first scrape and match an offline
	// aggregation using the same orders. Names not listed are appended
	// in order of first appearance.
	Regions, Activities []string
	// PhasePenalty is the change-point penalty of the streaming phase
	// detection run over the window trajectory (served at /phases.json);
	// <= 0 selects the automatic default, matching what an offline
	// `imba -phases` finds on the same trace. Phase detection is only
	// active when Window is set.
	PhasePenalty float64
	// WindowCap bounds the temporal state: the fold keeps the most recent
	// WindowCap windows at full resolution and decimates older ones 2:1
	// into a coarse tail of at most WindowCap windows, so a forever-running
	// workload holds O(WindowCap) state instead of growing without bound.
	// 0 means temporal.DefaultWindowCap — the live path is bounded by
	// default, since it is exactly the path that cannot assume the run
	// ends. Negative disables the cap (the pre-retention unbounded
	// behavior, for runs known to be short).
	WindowCap int
	// MaxRank bounds the processor rank an event may carry; events above
	// it are dropped and counted as malformed. The fold allocates
	// per-rank state proportional to the largest rank seen, so a wild
	// rank — an instrumentation bug in-process, or a hostile frame on
	// the network ingest path, where the rank is decoded from
	// peer-controlled bytes — must be rejected before it can balloon
	// collector memory. 0 means DefaultMaxRank; negative disables the
	// bound (in-process trusted producers only — never with a network
	// ingest listener attached).
	MaxRank int
}

// DefaultMaxRank is the default bound on event ranks (Options.MaxRank):
// generous enough for the million-core story, small enough that the
// per-rank fold state a single event can force stays in the megabytes.
const DefaultMaxRank = 1 << 20

// Collector is a live, concurrency-safe event collector implementing
// trace.Sink. Create one with NewCollector.
type Collector struct {
	window  float64
	mask    uint64
	boot    uint64
	maxRank int
	shards  []shard
	events  atomic.Uint64
	dropped atomic.Uint64

	// spare holds, per shard, the previously drained buffer awaiting
	// reuse: the drain hands it (emptied) to the shard it came from at the
	// next swap, so a steady Record-between-scrapes cycle recirculates two
	// buffers per shard instead of reallocating from zero every scrape.
	// Only the fold path touches it (under foldMu).
	spare [][]trace.Event

	// prodMu guards the SPSC producer registry; registration is rare, so
	// the fold copies the list under the lock and drains outside it.
	prodMu      sync.Mutex
	producers   []*Producer
	prodScratch []*Producer

	// foldMu serializes snapshotters; it is never held while a shard
	// mutex is held longer than a buffer swap.
	foldMu sync.Mutex
	state  foldState
	// gen counts published snapshot generations; it only advances when a
	// fold actually changed the state, so an unchanged collector keeps
	// re-serving the same immutable snapshot (and its memoized views).
	gen uint64

	snap atomic.Pointer[Snapshot]
}

// shard is one Record buffer. The padding keeps shards on distinct cache
// lines so ranks hashing to different shards do not false-share.
type shard struct {
	mu  sync.Mutex
	buf []trace.Event
	_   [24]byte
}

// NewCollector creates a collector with the given options.
func NewCollector(opts Options) *Collector {
	n := opts.Shards
	if n <= 0 {
		n = 8
	}
	pow := 1
	for pow < n {
		pow *= 2
	}
	maxRank := opts.MaxRank
	switch {
	case maxRank == 0:
		maxRank = DefaultMaxRank
	case maxRank < 0:
		maxRank = math.MaxInt
	}
	c := &Collector{
		window:  opts.Window,
		mask:    uint64(pow - 1),
		shards:  make([]shard, pow),
		spare:   make([][]trace.Event, pow),
		boot:    BootNonce(),
		maxRank: maxRank,
	}
	c.state.init(opts.Regions, opts.Activities)
	if opts.Window > 0 {
		// The windowing itself lives in internal/temporal — the one
		// implementation of the clipping semantics, shared with the
		// offline and federated pipelines. PerActivity keeps per-window
		// per-activity busy vectors so /phases.json can name each phase's
		// hot activities (TrackActivities stays off: /timeline.json's
		// wire format has no Dominant field); PerRegion adds the region
		// split so /diagnose.json can attribute a rank's divergence to
		// the code region the extra time went to.
		winCap := opts.WindowCap
		if winCap == 0 {
			winCap = temporal.DefaultWindowCap
		}
		if winCap < 0 {
			winCap = 0 // explicit opt-out: unbounded
		}
		c.state.tw = temporal.NewFold(temporal.Options{
			Window:      opts.Window,
			PerActivity: true,
			PerRegion:   true,
			WindowCap:   winCap,
		})
		c.state.seg = temporal.NewStreamSegmenter(opts.PhasePenalty)
	}
	return c
}

// BootNonce returns a value distinguishing one snapshot-publisher
// incarnation from any other, so a scraper comparing snapshot ETags
// never mistakes a restarted publisher (whose Gen restarted from zero)
// for an unchanged one. Collectors take one per NewCollector; the
// federation layer takes one per Federator, since a federator is itself
// a snapshot publisher that downstream federators may scrape.
// Wall-clock nanoseconds shifted to make room for a process-local
// counter: distinct within a process by the counter, across processes by
// the clock.
func BootNonce() uint64 {
	return uint64(time.Now().UnixNano())<<10 | (bootSeq.Add(1) & 0x3ff)
}

var bootSeq atomic.Uint64

// Record folds one event into the collector. It is safe for concurrent
// use and sits on the instrumented program's critical path, so it only
// appends to a sharded buffer; the aggregation happens at Snapshot.
// Malformed events (rank outside [0, MaxRank], empty names, end before
// start, start before virtual time zero, non-finite timestamps) are
// dropped and counted instead of corrupting the cube. A live run's
// virtual clock starts at zero, so a negative start can only be an
// instrumentation bug; the shared window fold would handle it (it floors
// into negative-index windows), but the live wire format has no place
// for windows before the run began.
func (c *Collector) Record(e trace.Event) {
	if c.malformed(e) {
		c.dropped.Add(1)
		return
	}
	s := &c.shards[uint64(e.Rank)&c.mask]
	s.mu.Lock()
	s.buf = append(s.buf, e)
	s.mu.Unlock()
	c.events.Add(1)
}

// malformed is the validity test of Record, shared by every intake path
// so the batched and wire paths drop exactly what Record drops. The
// timestamp tests are spelled with negated comparisons so NaN fails
// them (every ordered comparison against NaN is false): the wire
// decoder reconstructs timestamps from arbitrary IEEE-754 bit patterns,
// and a NaN duration folded into a cell would poison its accumulators
// permanently. +Inf is caught by the MaxFloat64 test (an infinite End
// also makes the duration infinite, and an infinite Start forces an
// infinite End). The rank bound likewise guards the fold's per-rank
// allocations against a decoded rank no real machine has.
func (c *Collector) malformed(e trace.Event) bool {
	return e.Rank < 0 || e.Rank > c.maxRank ||
		e.Region == "" || e.Activity == "" ||
		!(e.Start >= 0) || !(e.End >= e.Start) || e.End > math.MaxFloat64
}

// RecordBatch folds a whole batch with batch-granular costs: events are
// appended to the sharded buffers in runs (one lock acquisition per run
// of same-shard events instead of one per event) and the counters are
// bumped once per batch instead of once per event. The result is
// bit-for-bit identical to calling Record on each event in order — same
// drops, same per-shard order, therefore the same fold. The batch slice
// is not retained. For the highest rates, prefer a Producer ring, which
// removes the locks entirely.
func (c *Collector) RecordBatch(events []trace.Event) {
	var recorded, malformed uint64
	i := 0
	for i < len(events) {
		if c.malformed(events[i]) {
			malformed++
			i++
			continue
		}
		sh := uint64(events[i].Rank) & c.mask
		j := i + 1
		for j < len(events) && !c.malformed(events[j]) && uint64(events[j].Rank)&c.mask == sh {
			j++
		}
		s := &c.shards[sh]
		s.mu.Lock()
		s.buf = append(s.buf, events[i:j]...)
		s.mu.Unlock()
		recorded += uint64(j - i)
		i = j
	}
	if recorded > 0 {
		c.events.Add(recorded)
	}
	if malformed > 0 {
		c.dropped.Add(malformed)
	}
}

// Events returns the number of events recorded so far (including ones
// not yet folded into a snapshot).
func (c *Collector) Events() uint64 { return c.events.Load() }

// Dropped returns the number of malformed events rejected so far.
func (c *Collector) Dropped() uint64 { return c.dropped.Load() }

// Window returns the configured temporal window width in virtual
// seconds; 0 when windowing is disabled.
func (c *Collector) Window() float64 { return c.window }

// Snapshot drains the buffered events, folds them into the running
// aggregation and publishes the resulting immutable snapshot, which it
// also returns. Concurrent Record calls are only blocked for the length
// of one buffer swap; concurrent Snapshot calls serialize.
func (c *Collector) Snapshot() *Snapshot {
	c.foldMu.Lock()
	defer c.foldMu.Unlock()
	// Capture the drop counter before draining. The event counter is NOT
	// read from c.events: a Record racing with the drain could already
	// have bumped it without its event being in the drained buffers, and
	// a published snapshot must never claim events its cube does not
	// account for. foldState.folded counts exactly the folded events.
	dropped := c.dropped.Load()
	c.foldPending()
	// Nothing changed since the last build: re-serve the previous immutable
	// snapshot, so scrape handlers reuse its memoized analysis instead of
	// recomputing every index for identical data. The folded count — not
	// the drain count of this call — is what the comparison must use: a
	// background Fold between two snapshots advances the state while
	// leaving this call's drain empty.
	if prev := c.snap.Load(); prev != nil && c.state.folded == prev.Events && dropped == prev.Dropped {
		return prev
	}
	c.gen++
	snap := c.state.build(c.state.folded, dropped, c.gen)
	snap.Boot = c.boot
	c.snap.Store(snap)
	return snap
}

// Latest returns the most recently published snapshot without draining
// the buffers or taking any lock; it returns nil before the first
// Snapshot call.
func (c *Collector) Latest() *Snapshot { return c.snap.Load() }

// Fold drains every pending event — sharded buffers and producer rings —
// into the running aggregation without building or publishing a snapshot,
// and reports how many events it folded. Background folders (the ingest
// listener runs one) call it between scrapes so producer rings stay
// shallow at high event rates; the next Snapshot then only folds the
// tail. Also note that a fold changes no observable snapshot state: Gen
// advances only when a snapshot is actually built over new content.
func (c *Collector) Fold() int {
	c.foldMu.Lock()
	defer c.foldMu.Unlock()
	return c.foldPending()
}

// foldPending drains the sharded buffers and the producer rings into the
// fold state, returning the number of events folded. The caller holds
// foldMu. Drained shard buffers are recycled: each shard gets its
// previously drained (now empty) buffer back at the swap, so steady-state
// recording reallocates nothing — the fix for the drain-alloc churn where
// every Record-between-scrapes cycle regrew the buffers from nil.
func (c *Collector) foldPending() int {
	drained := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		buf := s.buf
		s.buf = c.spare[i]
		s.mu.Unlock()
		c.spare[i] = nil
		for _, e := range buf {
			c.state.fold(e)
		}
		drained += len(buf)
		if cap(buf) <= maxRecycledSlab {
			c.spare[i] = buf[:0]
		}
	}
	// Drain the SPSC rings. The registry is copied under its own lock so
	// a connection registering mid-fold neither blocks nor is missed for
	// longer than one fold; drain order is registration order, keeping
	// the fold deterministic for a fixed set of producers.
	c.prodMu.Lock()
	prods := append(c.prodScratch[:0], c.producers...)
	c.prodScratch = prods
	c.prodMu.Unlock()
	pruned := false
	for _, p := range prods {
		drained += p.drain(&c.state)
		if p.closed.Load() && p.head.Load() == p.tail.Load() {
			pruned = true
		}
	}
	if pruned {
		// Unregister closed, fully drained producers so connection churn
		// does not accumulate dead rings.
		c.prodMu.Lock()
		kept := c.producers[:0]
		for _, p := range c.producers {
			if p.closed.Load() && p.head.Load() == p.tail.Load() {
				continue
			}
			kept = append(kept, p)
		}
		for i := len(kept); i < len(c.producers); i++ {
			c.producers[i] = nil
		}
		c.producers = kept
		c.prodMu.Unlock()
	}
	return drained
}

// foldState is the running aggregation the snapshots are built from. It
// is only touched under Collector.foldMu.
type foldState struct {
	regions    []string
	activities []string
	rIdx, aIdx map[string]int
	procs      int
	span       float64
	// folded is the number of events folded so far: exactly the events
	// the running totals (and therefore every published cube) account
	// for, unlike Collector.events which racing recorders may bump
	// before their event is drainable.
	folded uint64
	// totals[i][j] holds the per-rank accumulated wall clock time of
	// cell (i, j); rank slices grow on demand.
	totals [][][]float64
	// durs[i][j] is the streaming event-duration accumulator of the
	// cell.
	durs [][]stats.Accumulator
	// tw is the shared windowing engine accumulating the per-window
	// per-rank busy times (internal/temporal owns the clipping
	// semantics); nil when windowing is disabled.
	tw *temporal.Fold
	// seg maintains the PELT phase optimum incrementally across
	// snapshots: each build syncs it with the fresh trajectory (the
	// still-growing tail window rewinds, the settled prefix's DP state is
	// reused) so live phase detection costs amortized-constant work per
	// window instead of a full segmentation per scrape. nil when
	// windowing is disabled.
	seg *temporal.StreamSegmenter

	// lastRegion/lastActivity memoize the previous event's names and cube
	// indices: event streams repeat names in long runs, so the per-event
	// cost of the fold drops to a string comparison instead of two map
	// lookups. Indices never move once assigned, so the memo cannot go
	// stale. The empty string never matches — malformed events (empty
	// names) are rejected before the fold.
	lastRegion   string
	lastRegionI  int
	lastActivity string
	lastActJ     int
}

func (s *foldState) init(regions, activities []string) {
	s.rIdx = make(map[string]int)
	s.aIdx = make(map[string]int)
	for _, r := range regions {
		s.regionIndex(r)
	}
	for _, a := range activities {
		s.activityIndex(a)
	}
}

func (s *foldState) regionIndex(name string) int {
	if i, ok := s.rIdx[name]; ok {
		return i
	}
	i := len(s.regions)
	s.rIdx[name] = i
	s.regions = append(s.regions, name)
	row := make([][]float64, len(s.activities))
	s.totals = append(s.totals, row)
	s.durs = append(s.durs, make([]stats.Accumulator, len(s.activities)))
	return i
}

func (s *foldState) activityIndex(name string) int {
	if j, ok := s.aIdx[name]; ok {
		return j
	}
	j := len(s.activities)
	s.aIdx[name] = j
	s.activities = append(s.activities, name)
	for i := range s.totals {
		s.totals[i] = append(s.totals[i], nil)
		s.durs[i] = append(s.durs[i], stats.Accumulator{})
	}
	return j
}

// fold accumulates one event into the running totals. Record already
// rejected malformed events, so e has a nonnegative rank and start and a
// nonnegative duration.
func (s *foldState) fold(e trace.Event) {
	if e.Region != s.lastRegion {
		s.lastRegionI = s.regionIndex(e.Region)
		s.lastRegion = e.Region
	}
	if e.Activity != s.lastActivity {
		s.lastActJ = s.activityIndex(e.Activity)
		s.lastActivity = e.Activity
	}
	i, j := s.lastRegionI, s.lastActJ
	s.folded++
	if e.Rank >= s.procs {
		s.procs = e.Rank + 1
	}
	if e.End > s.span {
		s.span = e.End
	}
	for len(s.totals[i][j]) <= e.Rank {
		s.totals[i][j] = append(s.totals[i][j], 0)
	}
	d := e.End - e.Start
	s.totals[i][j][e.Rank] += d
	s.durs[i][j].Add(d)
	if s.tw != nil {
		s.tw.Add(e)
	}
}
