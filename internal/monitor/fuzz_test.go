package monitor

import (
	"math"
	"sync"
	"testing"

	"loadimb/internal/trace"
)

// FuzzRecordSnapshot drives the collector with a fuzzer-chosen event
// stream, recorded from two goroutines while a third interleaves
// snapshots. Run under -race it guards the lock-free snapshot path: the
// invariant is that after a final quiescent Snapshot the cube accounts
// for every valid event exactly once, whatever the interleaving.
func FuzzRecordSnapshot(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{255, 0, 255, 0, 128, 7})
	f.Add([]byte("snapshots interleaved with records"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the fuzz input into events: 3 bytes each -> rank,
		// cell, duration. A zero duration byte doubles as a snapshot
		// point marker.
		type step struct {
			e    trace.Event
			snap bool
		}
		var steps []step
		var wantTotal float64
		var wantEvents uint64
		regions := []string{"ra", "rb", "rc"}
		activities := []string{"x", "y"}
		for i := 0; i+2 < len(data); i += 3 {
			rank := int(data[i] % 16)
			cell := int(data[i+1])
			d := float64(data[i+2]) / 16
			s := step{
				e: trace.Event{
					Rank:     rank,
					Region:   regions[cell%len(regions)],
					Activity: activities[(cell/3)%len(activities)],
					Start:    float64(i),
					End:      float64(i) + d,
				},
				snap: data[i+2] == 0,
			}
			steps = append(steps, s)
			wantTotal += d
			wantEvents++
		}
		c := NewCollector(Options{Shards: 4, Window: 8})
		var wg sync.WaitGroup
		half := len(steps) / 2
		for _, part := range [][]step{steps[:half], steps[half:]} {
			wg.Add(1)
			go func(part []step) {
				defer wg.Done()
				for _, s := range part {
					c.Record(s.e)
				}
			}(part)
		}
		snapDone := make(chan struct{})
		go func() {
			defer close(snapDone)
			for _, s := range steps {
				if s.snap {
					snap := c.Snapshot()
					if snap.Dropped != 0 {
						t.Error("valid events were dropped")
					}
				}
			}
		}()
		wg.Wait()
		<-snapDone
		snap := c.Snapshot()
		if snap.Events != wantEvents {
			t.Fatalf("events = %d, want %d", snap.Events, wantEvents)
		}
		if wantEvents == 0 {
			if snap.Cube != nil {
				t.Fatal("cube from zero events")
			}
			return
		}
		got := snap.Cube.RegionsTotal() * float64(snap.Cube.NumProcs())
		if math.Abs(got-wantTotal) > 1e-6*(1+wantTotal) {
			t.Fatalf("processor-seconds = %g, want %g", got, wantTotal)
		}
		// Re-snapshotting without new events must be a fixed point.
		again := c.Snapshot()
		if !again.Cube.EqualWithin(snap.Cube, 0) {
			t.Fatal("idempotent snapshot changed the cube")
		}
		// Windowed busy time partitions the instrumented total.
		var windowed float64
		for _, w := range again.Windows {
			windowed += w.Busy
		}
		if math.Abs(windowed-wantTotal) > 1e-6*(1+wantTotal) {
			t.Fatalf("windowed busy %g does not partition total %g", windowed, wantTotal)
		}
	})
}
