package monitor

import (
	"math"
	"sync"
	"testing"

	"loadimb/internal/trace"
)

// FuzzRecordSnapshot drives the collector with a fuzzer-chosen event
// stream, recorded from two goroutines while a third interleaves
// snapshots. Run under -race it guards the lock-free snapshot path: the
// invariant is that after a final quiescent Snapshot the cube accounts
// for every valid event exactly once, whatever the interleaving.
//
// The high bits of the rank byte select a boundary shape, so the fuzzer
// exercises the window-clipping edge cases deliberately: events snapped
// to end exactly on a window boundary, events stretched to span three or
// more windows, and zero-duration instants.
func FuzzRecordSnapshot(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{255, 0, 255, 0, 128, 7})
	f.Add([]byte("snapshots interleaved with records"))
	// Seed each boundary shape: 0x1_ snaps the end onto a boundary,
	// 0x2_ spans >=3 windows, 0x3_ is a zero-duration instant.
	f.Add([]byte{0x10, 1, 9, 0x21, 2, 5, 0x32, 3, 0, 0x13, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const window = 8.0
		// Decode the fuzz input into events: 3 bytes each -> rank+shape,
		// cell, duration. A zero duration byte doubles as a snapshot
		// point marker.
		type step struct {
			e    trace.Event
			snap bool
		}
		var steps []step
		var wantTotal float64
		var wantEvents uint64
		regions := []string{"ra", "rb", "rc"}
		activities := []string{"x", "y"}
		for i := 0; i+2 < len(data); i += 3 {
			rank := int(data[i] % 16)
			shape := int(data[i]>>4) % 4
			cell := int(data[i+1])
			d := float64(data[i+2]) / 16
			start := float64(i)
			end := start + d
			switch shape {
			case 1: // end exactly on a window boundary
				end = math.Ceil(end/window) * window
			case 2: // stretch to span at least three windows
				end = start + 2*window + d
			case 3: // zero-duration instant
				end = start
			}
			s := step{
				e: trace.Event{
					Rank:     rank,
					Region:   regions[cell%len(regions)],
					Activity: activities[(cell/3)%len(activities)],
					Start:    start,
					End:      end,
				},
				snap: data[i+2] == 0,
			}
			steps = append(steps, s)
			wantTotal += end - start
			wantEvents++
		}
		c := NewCollector(Options{Shards: 4, Window: window})
		var wg sync.WaitGroup
		half := len(steps) / 2
		for _, part := range [][]step{steps[:half], steps[half:]} {
			wg.Add(1)
			go func(part []step) {
				defer wg.Done()
				for _, s := range part {
					c.Record(s.e)
				}
			}(part)
		}
		snapDone := make(chan struct{})
		go func() {
			defer close(snapDone)
			for _, s := range steps {
				if s.snap {
					snap := c.Snapshot()
					if snap.Dropped != 0 {
						t.Error("valid events were dropped")
					}
				}
			}
		}()
		wg.Wait()
		<-snapDone
		snap := c.Snapshot()
		if snap.Events != wantEvents {
			t.Fatalf("events = %d, want %d", snap.Events, wantEvents)
		}
		if wantEvents == 0 {
			if snap.Cube != nil {
				t.Fatal("cube from zero events")
			}
			return
		}
		got := snap.Cube.RegionsTotal() * float64(snap.Cube.NumProcs())
		if math.Abs(got-wantTotal) > 1e-6*(1+wantTotal) {
			t.Fatalf("processor-seconds = %g, want %g", got, wantTotal)
		}
		// Re-snapshotting without new events must be a fixed point.
		again := c.Snapshot()
		if !again.Cube.EqualWithin(snap.Cube, 0) {
			t.Fatal("idempotent snapshot changed the cube")
		}
		// Windowed busy time partitions the instrumented total, and a
		// window's dispersion is defined exactly when it saw busy time.
		var windowed float64
		for _, w := range again.Windows {
			windowed += w.Busy
			if (w.ID != nil) != (w.Busy > 0) {
				t.Fatalf("window %d: busy %g but ID defined = %v", w.Index, w.Busy, w.ID != nil)
			}
		}
		if math.Abs(windowed-wantTotal) > 1e-6*(1+wantTotal) {
			t.Fatalf("windowed busy %g does not partition total %g", windowed, wantTotal)
		}
	})
}
