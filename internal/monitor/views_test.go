package monitor

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"loadimb/internal/core"
	"loadimb/internal/trace"
)

// feedCollector records a deterministic event mix across ranks.
func feedCollector(c *Collector, ranks, reps int) {
	for r := 0; r < reps; r++ {
		for p := 0; p < ranks; p++ {
			start := float64(r)
			c.Record(trace.Event{
				Rank: p, Region: fmt.Sprintf("loop%d", r%3), Activity: "comp",
				Start: start, End: start + 0.5 + float64(p)*0.01,
			})
			c.Record(trace.Event{
				Rank: p, Region: fmt.Sprintf("loop%d", r%3), Activity: "comm",
				Start: start + 0.5, End: start + 0.6,
			})
		}
	}
}

// TestSnapshotViewsMatchAnalyze checks the memoized snapshot views are the
// same objects on every call and agree with a fresh core analysis of the
// same cube.
func TestSnapshotViewsMatchAnalyze(t *testing.T) {
	c := NewCollector(Options{})
	feedCollector(c, 8, 6)
	snap := c.Snapshot()
	views, err := snap.Views()
	if err != nil {
		t.Fatalf("Views: %v", err)
	}
	if views == nil {
		t.Fatal("Views returned nil for a populated snapshot")
	}
	again, err := snap.Views()
	if err != nil {
		t.Fatalf("Views (second call): %v", err)
	}
	if again != views {
		t.Fatal("second Views call computed a new object instead of the memo")
	}

	cells, err := core.Dispersions(snap.Cube, core.Options{})
	if err != nil {
		t.Fatalf("Dispersions: %v", err)
	}
	for i := range cells {
		for j := range cells[i] {
			if views.Cells[i][j] != cells[i][j] {
				t.Errorf("cell (%d, %d): views %+v, fresh %+v", i, j, views.Cells[i][j], cells[i][j])
			}
		}
	}
	procs, err := core.NewProcessorView(snap.Cube, core.Options{})
	if err != nil {
		t.Fatalf("NewProcessorView: %v", err)
	}
	if views.Processors.LongestImbalanced != procs.LongestImbalanced ||
		views.Processors.MostFrequentlyImbalanced != procs.MostFrequentlyImbalanced {
		t.Errorf("processor view disagrees: views %+v, fresh %+v",
			views.Processors, procs)
	}
}

// TestSnapshotViewsEmpty checks a cube-less snapshot serves nil views
// without error.
func TestSnapshotViewsEmpty(t *testing.T) {
	c := NewCollector(Options{})
	snap := c.Snapshot()
	views, err := snap.Views()
	if err != nil {
		t.Fatalf("Views on empty snapshot: %v", err)
	}
	if views != nil {
		t.Fatalf("Views on empty snapshot = %+v, want nil", views)
	}
}

// TestSnapshotReuseWhenUnchanged checks that snapshotting an unchanged
// collector re-serves the same immutable snapshot (same generation, same
// memoized views) and that new events advance the generation.
func TestSnapshotReuseWhenUnchanged(t *testing.T) {
	c := NewCollector(Options{})
	feedCollector(c, 4, 3)
	first := c.Snapshot()
	second := c.Snapshot()
	if first != second {
		t.Fatal("unchanged collector built a new snapshot")
	}
	if first.Gen != second.Gen {
		t.Fatalf("generation changed without new data: %d -> %d", first.Gen, second.Gen)
	}

	c.Record(trace.Event{Rank: 0, Region: "loop0", Activity: "comp", Start: 100, End: 101})
	third := c.Snapshot()
	if third == second {
		t.Fatal("collector re-served a stale snapshot after new events")
	}
	if third.Gen <= second.Gen {
		t.Fatalf("generation did not advance: %d -> %d", second.Gen, third.Gen)
	}
	if third.Events != second.Events+1 {
		t.Fatalf("Events = %d, want %d", third.Events, second.Events+1)
	}

	// A dropped (malformed) event also changes the published counters, so
	// it must produce a fresh snapshot even though the cube is unchanged.
	c.Record(trace.Event{Rank: -1, Region: "loop0", Activity: "comp", Start: 0, End: 1})
	fourth := c.Snapshot()
	if fourth == third {
		t.Fatal("collector re-served a snapshot with a stale drop counter")
	}
	if fourth.Dropped != third.Dropped+1 {
		t.Fatalf("Dropped = %d, want %d", fourth.Dropped, third.Dropped+1)
	}
}

// TestScrapeReuseServesIdenticalMetrics checks repeated scrapes of an
// unchanged collector render byte-identical metrics through the memoized
// views.
func TestScrapeReuseServesIdenticalMetrics(t *testing.T) {
	c := NewCollector(Options{})
	feedCollector(c, 6, 5)
	var first, second bytes.Buffer
	if err := WriteMetrics(&first, c.Snapshot()); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if err := WriteMetrics(&second, c.Snapshot()); err != nil {
		t.Fatalf("WriteMetrics (second scrape): %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("repeated scrapes of an unchanged collector differ")
	}
}

// TestConcurrentAnalyzeAndRecord hammers a collector with concurrent
// recorders, snapshotters, full core analyses and metric scrapes; under
// -race this verifies the whole live-analysis path — sharded Record,
// snapshot publication, lazy marginal fill, memoized views and the
// parallel region pool — is data-race free.
func TestConcurrentAnalyzeAndRecord(t *testing.T) {
	c := NewCollector(Options{Window: 1})
	feedCollector(c, 8, 2) // make sure the first snapshot has a cube
	c.Snapshot()

	var wg sync.WaitGroup
	const (
		recorders = 4
		analysts  = 3
		rounds    = 40
	)
	errs := make(chan error, analysts)
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				start := float64(r)
				c.Record(trace.Event{
					Rank: g, Region: "loop0", Activity: "comp",
					Start: start, End: start + 1,
				})
			}
		}(g)
	}
	for g := 0; g < analysts; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				snap := c.Snapshot()
				if snap.Cube == nil {
					errs <- fmt.Errorf("snapshot without cube after seeding")
					return
				}
				if _, err := core.Analyze(snap.Cube, core.AnalyzeOptions{}); err != nil {
					errs <- fmt.Errorf("Analyze: %w", err)
					return
				}
				if err := WriteMetrics(io.Discard, snap); err != nil {
					errs <- fmt.Errorf("WriteMetrics: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
