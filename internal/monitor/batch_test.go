package monitor

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"loadimb/internal/trace"
)

// batchEvents builds a pseudo-random stream with a sprinkling of malformed
// events, so the equivalence tests exercise the drop accounting of every
// intake path alongside the happy path.
func batchEvents(rng *rand.Rand, n, ranks int, withMalformed bool) []trace.Event {
	regions := []string{"loop 1", "loop 2", "halo"}
	activities := []string{"computation", "point-to-point", "collective"}
	events := make([]trace.Event, 0, n)
	cursors := make([]float64, ranks)
	for len(events) < n {
		r := rng.Intn(ranks)
		e := trace.Event{
			Rank:     r,
			Region:   regions[rng.Intn(len(regions))],
			Activity: activities[rng.Intn(len(activities))],
			Start:    cursors[r],
			End:      cursors[r] + rng.Float64()*0.2,
		}
		cursors[r] = e.End
		if withMalformed && rng.Intn(12) == 0 {
			switch rng.Intn(4) {
			case 0:
				e.Rank = -1 - rng.Intn(3)
			case 1:
				e.Region = ""
			case 2:
				e.End = e.Start - 1
			case 3:
				e.Start = -e.Start - 1
			}
		}
		events = append(events, e)
	}
	return events
}

// sameSnapshot asserts bit-for-bit identical fold results: equal counters,
// equal span bits, and deeply equal cube, cell statistics and temporal
// state. reflect.DeepEqual reaches the unexported Welford fields of
// stats.Accumulator, so a cross-rank fold-order difference — which changes
// float rounding — fails here even when the sums agree to a tolerance.
func sameSnapshot(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Events != want.Events || got.Dropped != want.Dropped {
		t.Fatalf("counters: got events=%d dropped=%d, want events=%d dropped=%d",
			got.Events, got.Dropped, want.Events, want.Dropped)
	}
	if math.Float64bits(got.Span) != math.Float64bits(want.Span) {
		t.Fatalf("span bits differ: %x vs %x", math.Float64bits(got.Span), math.Float64bits(want.Span))
	}
	sameCube(t, got.Cube, want.Cube)
	if !reflect.DeepEqual(got.CellStats, want.CellStats) {
		t.Fatal("cell duration accumulators differ")
	}
	if !reflect.DeepEqual(got.Series, want.Series) {
		t.Fatal("window series differ")
	}
	if !reflect.DeepEqual(got.Windows, want.Windows) || !reflect.DeepEqual(got.Coarse, want.Coarse) {
		t.Fatal("window trajectories differ")
	}
	if !reflect.DeepEqual(got.Phases, want.Phases) {
		t.Fatal("phase segmentations differ")
	}
}

// sameCube compares two cubes cell by cell at the bit level. (The cube
// struct itself cannot be DeepEqual'd: its marginal cache is an atomic
// pointer, distinct between any two instances.)
func sameCube(t *testing.T, got, want *trace.Cube) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("one snapshot has a cube, the other does not (got %v, want %v)", got != nil, want != nil)
	}
	if got == nil {
		return
	}
	if !reflect.DeepEqual(got.Regions(), want.Regions()) ||
		!reflect.DeepEqual(got.Activities(), want.Activities()) ||
		got.NumProcs() != want.NumProcs() {
		t.Fatalf("cube dimensions differ: (%v,%v,%d) vs (%v,%v,%d)",
			got.Regions(), got.Activities(), got.NumProcs(),
			want.Regions(), want.Activities(), want.NumProcs())
	}
	if math.Float64bits(got.ProgramTime()) != math.Float64bits(want.ProgramTime()) {
		t.Fatalf("program times differ: %v vs %v", got.ProgramTime(), want.ProgramTime())
	}
	for i := 0; i < got.NumRegions(); i++ {
		for j := 0; j < got.NumActivities(); j++ {
			for p := 0; p < got.NumProcs(); p++ {
				g, _ := got.At(i, j, p)
				w, _ := want.At(i, j, p)
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("cell (%d,%d,%d): %v vs %v", i, j, p, g, w)
				}
			}
		}
	}
}

// TestRecordBatchEquivalence: RecordBatch over arbitrary chunkings must be
// bit-for-bit identical to per-event Record — same drops, same per-shard
// order, therefore the same fold — including a mid-stream snapshot that
// exercises the drain/recycle path on both collectors.
func TestRecordBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		events := batchEvents(rng, 400+rng.Intn(400), 9, true)
		opts := Options{Shards: 4, Window: 0.25}
		ref := NewCollector(opts)
		bat := NewCollector(opts)

		mid := len(events) / 2
		feed := func(from, to int) {
			for _, e := range events[from:to] {
				ref.Record(e)
			}
			for i := from; i < to; {
				j := i + 1 + rng.Intn(to-i)
				bat.RecordBatch(events[i:j])
				i = j
			}
		}
		feed(0, mid)
		sameSnapshot(t, bat.Snapshot(), ref.Snapshot())
		feed(mid, len(events))
		sameSnapshot(t, bat.Snapshot(), ref.Snapshot())
	}
}

// TestProducerEquivalence: per-rank SPSC producers must reproduce the
// per-event Record fold bit for bit when the fold order matches — one
// shard per rank and producers registered in rank order, so both paths
// fold rank 0's events first, then rank 1's, and so on.
func TestProducerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const ranks = 8
	events := batchEvents(rng, 1200, ranks, true)
	opts := Options{Shards: ranks, Window: 0.25}
	ref := NewCollector(opts)
	prod := NewCollector(opts)

	producers := make([]*Producer, ranks)
	for r := range producers {
		producers[r] = prod.Producer(ProducerOptions{Ring: 1 << 12})
	}
	for _, e := range events {
		ref.Record(e)
		r := e.Rank
		if r < 0 {
			// Malformed rank: any producer counts the drop identically.
			r = 0
		}
		producers[r%ranks].Record(e)
	}
	sameSnapshot(t, prod.Snapshot(), ref.Snapshot())

	// Closed, drained producers are pruned at the next fold.
	for _, p := range producers {
		p.Close()
	}
	prod.Fold()
	prod.prodMu.Lock()
	left := len(prod.producers)
	prod.prodMu.Unlock()
	if left != 0 {
		t.Fatalf("%d closed producers still registered after fold", left)
	}
}

// TestProducerDropOnFull: a full ring in drop mode discards the overflow
// without blocking, counts it on the producer, and never corrupts the
// collector's event accounting.
func TestProducerDropOnFull(t *testing.T) {
	c := NewCollector(Options{Shards: 1})
	p := c.Producer(ProducerOptions{Ring: 8, DropOnFull: true})
	events := batchEvents(rand.New(rand.NewSource(5)), 100, 1, false)
	p.RecordBatch(events)
	if p.Dropped() != 92 {
		t.Fatalf("dropped %d events, want 92", p.Dropped())
	}
	snap := c.Snapshot()
	if snap.Events != 8 {
		t.Fatalf("snapshot has %d events, want the 8 that fit the ring", snap.Events)
	}
	if c.Dropped() != 0 {
		t.Fatalf("ring drops leaked into the malformed-event counter: %d", c.Dropped())
	}
}

// TestProducerBackpressure: in blocking mode nothing is lost — the
// producer stalls until the consumer folds the ring, so every event
// arrives even through a ring far smaller than the batch.
func TestProducerBackpressure(t *testing.T) {
	c := NewCollector(Options{Shards: 1})
	p := c.Producer(ProducerOptions{Ring: 8})
	events := batchEvents(rand.New(rand.NewSource(6)), 1000, 1, false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.RecordBatch(events)
		p.Close()
	}()
	folded := 0
	for folded < len(events) {
		folded += c.Fold()
		runtime.Gosched()
	}
	<-done
	if snap := c.Snapshot(); snap.Events != uint64(len(events)) {
		t.Fatalf("snapshot has %d events, want %d", snap.Events, len(events))
	}
}

// TestProducerDropsMalformed: the producer path applies exactly Record's
// validity rule, charging malformed events to the collector's counter and
// never to the ring-overflow counter.
func TestProducerDropsMalformed(t *testing.T) {
	c := NewCollector(Options{})
	p := c.Producer(ProducerOptions{})
	p.RecordBatch([]trace.Event{
		{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 1},
		{Rank: -1, Region: "r", Activity: "a", Start: 0, End: 1},
		{Rank: 1, Region: "", Activity: "a", Start: 0, End: 1},
		{Rank: 1, Region: "r", Activity: "a", Start: 2, End: 1},
	})
	if c.Dropped() != 3 {
		t.Fatalf("malformed counter = %d, want 3", c.Dropped())
	}
	if p.Dropped() != 0 {
		t.Fatalf("ring-drop counter = %d, want 0", p.Dropped())
	}
	if snap := c.Snapshot(); snap.Events != 1 || snap.Dropped != 3 {
		t.Fatalf("snapshot events=%d dropped=%d, want 1, 3", snap.Events, snap.Dropped)
	}
}

// TestProducerRecordBatchAllocs is the acceptance guard of the zero-alloc
// claim: the steady-state producer publish path must perform no heap
// allocations at all.
func TestProducerRecordBatchAllocs(t *testing.T) {
	c := NewCollector(Options{Shards: 1})
	// A ring big enough that AllocsPerRun's warmup call plus every measured
	// run fit without a drain (and therefore without ever stalling).
	p := c.Producer(ProducerOptions{Ring: 1 << 16})
	batch := batchEvents(rand.New(rand.NewSource(7)), 512, 4, false)
	allocs := testing.AllocsPerRun(100, func() {
		p.RecordBatch(batch)
	})
	if allocs != 0 {
		t.Fatalf("producer RecordBatch allocates %.1f objects per batch, want 0", allocs)
	}
}

// TestSteadyStateFoldAllocs: after warmup, a RecordBatch+Fold cycle —
// publish into the sharded buffers, drain, fold — reaches an allocation
// fixpoint: the drain recycles the shard buffers through the spare swap
// instead of regrowing them from nil every cycle (the Snapshot drain-churn
// fix), and the fold state has seen every cell and rank.
func TestSteadyStateFoldAllocs(t *testing.T) {
	c := NewCollector(Options{Shards: 2})
	batch := batchEvents(rand.New(rand.NewSource(8)), 512, 4, false)
	for i := 0; i < 4; i++ { // reach the fixpoint: buffers grown, spares seeded
		c.RecordBatch(batch)
		c.Fold()
	}
	allocs := testing.AllocsPerRun(50, func() {
		c.RecordBatch(batch)
		c.Fold()
	})
	if allocs != 0 {
		t.Fatalf("steady-state RecordBatch+Fold allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestSteadyStateProducerFoldAllocs: the same fixpoint for the ring path —
// the drain copies spans into pooled slabs, so producer publish plus fold
// settles to zero allocations per cycle.
func TestSteadyStateProducerFoldAllocs(t *testing.T) {
	c := NewCollector(Options{Shards: 1})
	p := c.Producer(ProducerOptions{Ring: 1 << 12})
	batch := batchEvents(rand.New(rand.NewSource(9)), 512, 4, false)
	for i := 0; i < 4; i++ {
		p.RecordBatch(batch)
		c.Fold()
	}
	allocs := testing.AllocsPerRun(50, func() {
		p.RecordBatch(batch)
		c.Fold()
	})
	if allocs != 0 {
		t.Fatalf("steady-state producer+Fold allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestFoldThenSnapshot: events folded by a background Fold — which
// publishes nothing — must appear in the next Snapshot; the snapshot
// re-serve fast path must not mistake an empty drain for "nothing new".
func TestFoldThenSnapshot(t *testing.T) {
	c := NewCollector(Options{})
	before := c.Snapshot()
	c.Record(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0, End: 1})
	if folded := c.Fold(); folded != 1 {
		t.Fatalf("Fold folded %d events, want 1", folded)
	}
	after := c.Snapshot()
	if after.Events != 1 {
		t.Fatalf("snapshot after background fold has %d events, want 1", after.Events)
	}
	if after.Gen == before.Gen {
		t.Fatal("snapshot generation did not advance over new content")
	}
	// And with nothing new, the same snapshot is re-served.
	if again := c.Snapshot(); again != after {
		t.Fatal("unchanged collector rebuilt its snapshot")
	}
}

// TestBatchCounterDiscipline is the regression test for the batched
// counter bump: even though RecordBatch adds to c.events once per batch,
// a snapshot racing with concurrent batches must never claim events its
// cube does not account for (the discipline documented at Snapshot). All
// durations are exactly 1.0, so the cube's total instrumented time counts
// folded events exactly in float64.
func TestBatchCounterDiscipline(t *testing.T) {
	c := NewCollector(Options{Shards: 4})
	const (
		writers       = 4
		perWriter     = 200
		batchSize     = 16
		eventsPerRank = writers * perWriter * batchSize
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]trace.Event, batchSize)
			for i := 0; i < perWriter; i++ {
				for k := range batch {
					s := float64(i*batchSize + k)
					batch[k] = trace.Event{Rank: w, Region: "r", Activity: "a", Start: s, End: s + 1}
				}
				c.RecordBatch(batch)
			}
		}(w)
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			snap := c.Snapshot()
			if snap.Cube != nil {
				var total float64
				for _, pt := range snap.ProcTotals() {
					total += pt
				}
				if total != float64(snap.Events) {
					t.Errorf("snapshot claims %d events but cube accounts for %.0f", snap.Events, total)
					return
				}
			} else if snap.Events != 0 {
				t.Errorf("snapshot claims %d events with no cube", snap.Events)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()
	if snap := c.Snapshot(); snap.Events != uint64(writers*perWriter*batchSize) {
		t.Fatalf("final snapshot has %d events, want %d", snap.Events, writers*perWriter*batchSize)
	}
	_ = eventsPerRank
}

// TestConcurrentProducersAndScraper drives the full concurrent surface at
// once — per-event recorders, batched recorders, SPSC producers and a
// snapshotting scraper — for the race detector, and checks that no event
// is lost or double-counted end to end.
func TestConcurrentProducersAndScraper(t *testing.T) {
	c := NewCollector(Options{Shards: 4, Window: 0.5})
	rng := rand.New(rand.NewSource(11))
	const perSource = 3000
	streams := make([][]trace.Event, 6)
	for i := range streams {
		streams[i] = batchEvents(rand.New(rand.NewSource(int64(100+i))), perSource, 4, false)
	}
	_ = rng

	var wg sync.WaitGroup
	// Two per-event recorders.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(events []trace.Event) {
			defer wg.Done()
			for _, e := range events {
				c.Record(e)
			}
		}(streams[i])
	}
	// Two batched recorders.
	for i := 2; i < 4; i++ {
		wg.Add(1)
		go func(events []trace.Event) {
			defer wg.Done()
			for len(events) > 0 {
				n := 64
				if n > len(events) {
					n = len(events)
				}
				c.RecordBatch(events[:n])
				events = events[n:]
			}
		}(streams[i])
	}
	// Two SPSC producers (blocking mode: the scraper's folds free space).
	for i := 4; i < 6; i++ {
		wg.Add(1)
		go func(events []trace.Event) {
			defer wg.Done()
			p := c.Producer(ProducerOptions{Ring: 256})
			defer p.Close()
			for len(events) > 0 {
				n := 100
				if n > len(events) {
					n = len(events)
				}
				p.RecordBatch(events[:n])
				events = events[n:]
			}
		}(streams[i])
	}
	// Scraper: folds (freeing producer rings) and snapshots concurrently.
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			c.Snapshot()
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()
	snap := c.Snapshot()
	if want := uint64(len(streams) * perSource); snap.Events != want {
		t.Fatalf("final snapshot has %d events, want %d", snap.Events, want)
	}
}
