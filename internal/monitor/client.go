package monitor

// This file implements the producer side of the network ingest path: an
// IngestClient is a trace.Sink (and BatchSink) that ships events to a
// remote collector over the binary wire protocol. Instrumented programs
// plug it in wherever they would plug a Collector — the cfd solver's
// Config.Sink, a replay tool — and the remote daemon folds the stream
// exactly as a local collector would have.

import (
	"bufio"
	"net"
	"sync"
	"time"

	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

// ClientOptions configures an IngestClient.
type ClientOptions struct {
	// Batch is the number of buffered events that triggers an automatic
	// flush (one wire frame). 0 means 1024; values above
	// tracefmt.MaxWireBatch are clamped to it.
	Batch int
	// FlushInterval bounds the latency of a trickling producer: a
	// background timer flushes the partial batch this often. 0 means
	// 100 milliseconds; negative disables the timer (flushes happen only
	// on a full batch, an explicit Flush, or Close).
	FlushInterval time.Duration
}

// IngestClient streams events to a remote collector's ingest listener.
// It implements trace.Sink and trace.BatchSink and is safe for concurrent
// use; events are buffered into frames, so the per-event cost is an
// append under a mutex. Transport errors are sticky: the client drops
// subsequent events and reports the error from Flush, Err and Close —
// instrumentation must keep running even when the observer goes away.
type IngestClient struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	enc     *tracefmt.WireEncoder
	buf     []trace.Event
	batch   int
	err     error
	stop    chan struct{}
	stopped sync.WaitGroup
}

// DialIngest connects to a collector's ingest listener. The spec uses the
// listener syntax: "unix:PATH" or "tcp:HOST:PORT".
func DialIngest(spec string, opts ClientOptions) (*IngestClient, error) {
	network, addr, err := ParseIngestSpec(spec)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = 1024
	}
	if batch > tracefmt.MaxWireBatch {
		batch = tracefmt.MaxWireBatch
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	c := &IngestClient{
		conn:  conn,
		bw:    bw,
		enc:   tracefmt.NewWireEncoder(bw),
		buf:   make([]trace.Event, 0, batch),
		batch: batch,
		stop:  make(chan struct{}),
	}
	interval := opts.FlushInterval
	if interval == 0 {
		interval = 100 * time.Millisecond
	}
	if interval > 0 {
		c.stopped.Add(1)
		go func() {
			defer c.stopped.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-t.C:
					_ = c.Flush()
				}
			}
		}()
	}
	return c, nil
}

// Record buffers one event, flushing a frame when the batch fills.
func (c *IngestClient) Record(e trace.Event) {
	c.mu.Lock()
	if c.err == nil {
		c.buf = append(c.buf, e)
		if len(c.buf) >= c.batch {
			c.flushLocked()
		}
	}
	c.mu.Unlock()
}

// RecordBatch buffers a whole batch, flushing full frames as it goes. The
// slice is not retained.
func (c *IngestClient) RecordBatch(events []trace.Event) {
	c.mu.Lock()
	for c.err == nil && len(events) > 0 {
		n := c.batch - len(c.buf)
		if n > len(events) {
			n = len(events)
		}
		c.buf = append(c.buf, events[:n]...)
		events = events[n:]
		if len(c.buf) >= c.batch {
			c.flushLocked()
		}
	}
	c.mu.Unlock()
}

// Flush encodes and sends the buffered partial batch, returning the
// sticky transport error if any.
func (c *IngestClient) Flush() error {
	c.mu.Lock()
	c.flushLocked()
	err := c.err
	c.mu.Unlock()
	return err
}

func (c *IngestClient) flushLocked() {
	if c.err == nil && len(c.buf) > 0 {
		c.err = c.enc.EncodeBatch(c.buf)
	}
	if c.err == nil {
		c.err = c.bw.Flush()
	}
	c.buf = c.buf[:0]
}

// Err returns the sticky transport error, nil while the stream is
// healthy.
func (c *IngestClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes the remaining events, stops the flush timer and closes
// the connection. It returns the first error of the stream.
func (c *IngestClient) Close() error {
	c.mu.Lock()
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.flushLocked()
	err := c.err
	cerr := c.conn.Close()
	if err == nil {
		err = cerr
	}
	c.mu.Unlock()
	c.stopped.Wait()
	return err
}
