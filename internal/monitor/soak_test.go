package monitor

import (
	"runtime"
	"sort"
	"testing"
	"time"

	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

// TestCollectorLongRunSoak is the regression test for the unbounded
// window-series blowup: a looping workload at a tiny window used to
// accumulate one WindowVector per window forever, and every scrape's
// segmenter pass walked all of them — the observer eventually killed the
// observed run. With the default window cap the collector must hold
// O(cap) temporal state and O(cap) scrape cost no matter how long the
// run loops. This drives >= 100k windows through a collector and asserts:
//
//   - the retained series stays within the cap (ring and coarse tail);
//   - the heap stays under a fixed ceiling (runtime.ReadMemStats);
//   - late scrapes cost no more than a small multiple of early ones;
//   - the served phases still match the offline segmenter over the
//     retained ring — what /phases.json promises.
func TestCollectorLongRunSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run soak skipped in -short")
	}
	const (
		window  = 0.001
		procs   = 4
		nWin    = 120_000 // windows the looping workload spans
		perStep = 5_000   // windows folded between scrapes
	)
	c := NewCollector(Options{Window: window}) // default window cap
	var scrapeTimes []time.Duration
	var snap *Snapshot
	for w := 0; w < nWin; w++ {
		t0 := float64(w) * window
		for p := 0; p < procs; p++ {
			// A skewed, phase-shifting load so windows differ and the
			// segmenter has structure to chew on.
			d := window * (0.3 + 0.1*float64(p) + 0.2*float64((w/20_000)%3))
			c.Record(trace.Event{
				Rank: p, Region: "loop", Activity: "comp",
				Start: t0, End: t0 + d,
			})
		}
		if (w+1)%perStep == 0 {
			start := time.Now()
			snap = c.Snapshot()
			scrapeTimes = append(scrapeTimes, time.Since(start))
		}
	}

	if snap.Series == nil {
		t.Fatal("no window series")
	}
	if n := len(snap.Series.Windows); n > temporal.DefaultWindowCap {
		t.Errorf("ring holds %d windows, cap is %d", n, temporal.DefaultWindowCap)
	}
	if n := len(snap.Series.Coarse); n == 0 || n > temporal.DefaultWindowCap {
		t.Errorf("coarse tail holds %d windows, want 1..%d", n, temporal.DefaultWindowCap)
	}
	if snap.Series.CoarseWindow <= 0 {
		t.Error("a 120k-window run at cap 4096 must have decimated")
	}

	// Heap ceiling: the unbounded path held every window of the run; the
	// bounded one holds O(cap) vectors plus the cube — far under 128 MiB
	// regardless of run length.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 128<<20 {
		t.Errorf("heap after 120k windows: %d MiB, ceiling 128 MiB", ms.HeapAlloc>>20)
	}

	// Scrape-cost boundedness: the median of the last scrapes must stay
	// within a small factor of the median of the first ones. Medians and
	// a generous factor keep scheduler noise from flaking the test; an
	// unbounded segmenter re-walk would be 10x+ by the end.
	median := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}
	k := len(scrapeTimes) / 3
	early, late := median(scrapeTimes[:k]), median(scrapeTimes[len(scrapeTimes)-k:])
	if late > 5*early {
		t.Errorf("scrape cost grew with run length: early median %v, late median %v", early, late)
	}

	// The live phases must equal the offline segmentation of the retained
	// ring — the /phases.json contract after decimation.
	offline := temporal.SummarizePhases(snap.Series, temporal.Segment(snap.Windows, 0))
	if len(offline) != len(snap.Phases) {
		t.Fatalf("live phases %d, offline %d", len(snap.Phases), len(offline))
	}
	for i := range offline {
		a, b := snap.Phases[i], offline[i]
		if a.FirstWindow != b.FirstWindow || a.LastWindow != b.LastWindow || a.Label != b.Label {
			t.Errorf("phase %d: live %+v != offline %+v", i, a, b)
		}
	}
}
