package monitor

import (
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"loadimb/internal/trace"
)

// ingestSpecs returns the listener specs the end-to-end tests cover: a
// Unix domain socket and a loopback TCP port.
func ingestSpecs(t *testing.T) []string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "ingest.sock")
	return []string{"unix:" + sock, "tcp:127.0.0.1:0"}
}

// TestIngestEndToEnd: events shipped through the wire protocol (over UDS
// and TCP) land in the collector bit-identically to recording them
// in-process — the full producer→encoder→socket→decoder→ring→fold loop.
func TestIngestEndToEnd(t *testing.T) {
	for _, spec := range ingestSpecs(t) {
		t.Run(strings.SplitN(spec, ":", 2)[0], func(t *testing.T) {
			events := batchEvents(rand.New(rand.NewSource(21)), 5000, 6, false)
			ref := NewCollector(Options{Shards: 1, Window: 0.25})
			for _, e := range events {
				ref.Record(e)
			}

			c := NewCollector(Options{Shards: 1, Window: 0.25})
			srv := NewIngestServer(c, IngestOptions{})
			addr, err := srv.Listen(spec)
			if err != nil {
				t.Fatalf("listen %s: %v", spec, err)
			}
			dial := spec
			if strings.HasPrefix(spec, "tcp:") {
				dial = "tcp:" + addr.String() // resolve the :0 port
			}
			cl, err := DialIngest(dial, ClientOptions{Batch: 256})
			if err != nil {
				t.Fatalf("dial %s: %v", dial, err)
			}
			var sink trace.Sink = cl // the client is a plain sink to its users
			rest := events
			for len(rest) > 0 {
				n := 700
				if n > len(rest) {
					n = len(rest)
				}
				trace.RecordBatch(sink, rest[:n])
				rest = rest[n:]
			}
			if err := cl.Close(); err != nil {
				t.Fatalf("closing client: %v", err)
			}
			// The server folds asynchronously; wait for the last event.
			deadline := time.Now().Add(5 * time.Second)
			for c.Events() < uint64(len(events)) && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("closing server: %v", err)
			}
			if got := srv.Events(); got != uint64(len(events)) {
				t.Fatalf("server decoded %d events, want %d", got, len(events))
			}
			// One connection, one stream: the remote fold order equals the
			// in-process record order, so the snapshots are bit-identical.
			sameSnapshot(t, c.Snapshot(), ref.Snapshot())
		})
	}
}

// TestIngestDropOnFull: in drop mode a deliberately tiny ring with the
// folder effectively stalled loses events but never blocks the socket,
// and the losses are counted.
func TestIngestDropOnFull(t *testing.T) {
	c := NewCollector(Options{})
	srv := NewIngestServer(c, IngestOptions{
		Ring:       64,
		DropOnFull: true,
		FoldIdle:   time.Hour, // first idle nap parks the folder for good
	})
	defer srv.Close()
	sock := filepath.Join(t.TempDir(), "drop.sock")
	if _, err := srv.Listen("unix:" + sock); err != nil {
		t.Fatal(err)
	}
	// Give the folder time to hit the empty fold and park.
	time.Sleep(10 * time.Millisecond)
	cl, err := DialIngest("unix:"+sock, ClientOptions{Batch: 512})
	if err != nil {
		t.Fatal(err)
	}
	events := batchEvents(rand.New(rand.NewSource(4)), 4096, 2, false)
	cl.RecordBatch(events)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Events() < uint64(len(events)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.Events(); got != uint64(len(events)) {
		t.Fatalf("server decoded %d events, want %d", got, len(events))
	}
	if srv.Dropped() == 0 {
		t.Fatal("expected ring-overflow drops with a parked folder and a 64-event ring")
	}
}

// TestIngestCorruptStream: garbage after a valid prefix terminates only
// that connection, counts a decode error, and keeps the prefix.
func TestIngestCorruptStream(t *testing.T) {
	c := NewCollector(Options{})
	srv := NewIngestServer(c, IngestOptions{})
	defer srv.Close()
	sock := filepath.Join(t.TempDir(), "bad.sock")
	if _, err := srv.Listen("unix:" + sock); err != nil {
		t.Fatal(err)
	}
	cl, err := DialIngest("unix:"+sock, ClientOptions{Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	good := batchEvents(rand.New(rand.NewSource(5)), 8, 1, false)
	cl.RecordBatch(good)
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	// Shove raw junk down the same socket: a frame the decoder must
	// reject.
	if _, err := cl.conn.Write([]byte{0x05, 0xff, 0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.decodeErrors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.decodeErrors.Load() != 1 {
		t.Fatalf("decode errors = %d, want 1", srv.decodeErrors.Load())
	}
	if got := c.Snapshot().Events; got != uint64(len(good)) {
		t.Fatalf("collector kept %d events, want the %d sent before the corruption", got, len(good))
	}
	_ = cl.Close()
}

// TestIngestManyConnections: concurrent clients over one listener all
// land, and closed connections fold their loss counters into the totals.
func TestIngestManyConnections(t *testing.T) {
	c := NewCollector(Options{Shards: 8})
	srv := NewIngestServer(c, IngestOptions{})
	sock := filepath.Join(t.TempDir(), "many.sock")
	if _, err := srv.Listen("unix:" + sock); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	const perClient = 2000
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := DialIngest("unix:"+sock, ClientOptions{Batch: 128})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			events := batchEvents(rand.New(rand.NewSource(int64(i))), perClient, 4, false)
			for _, e := range events {
				cl.Record(e)
			}
			if err := cl.Close(); err != nil {
				t.Errorf("client %d close: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for c.Events() < clients*perClient && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Events; got != clients*perClient {
		t.Fatalf("collector folded %d events, want %d", got, clients*perClient)
	}
	if total := srv.connSeq.Load(); total != clients {
		t.Fatalf("accepted %d connections, want %d", total, clients)
	}
}

// TestParseIngestSpec covers the spec syntax and its errors.
func TestParseIngestSpec(t *testing.T) {
	if n, a, err := ParseIngestSpec("unix:/tmp/x.sock"); err != nil || n != "unix" || a != "/tmp/x.sock" {
		t.Fatalf("unix spec: %q %q %v", n, a, err)
	}
	if n, a, err := ParseIngestSpec("tcp:127.0.0.1:9999"); err != nil || n != "tcp" || a != "127.0.0.1:9999" {
		t.Fatalf("tcp spec: %q %q %v", n, a, err)
	}
	if _, _, err := ParseIngestSpec("udp:1.2.3.4:1"); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := DialIngest("bogus", ClientOptions{}); err == nil {
		t.Fatal("bogus dial spec accepted")
	}
}

// TestIngestHostileEvents: a wire peer is untrusted, and the decoder
// reconstructs ranks and timestamps from peer-controlled bytes. An
// absurd rank (which would force the fold to grow per-rank state to
// 2^50 slots — a remote OOM) and NaN timestamps (which would poison the
// Welford accumulators permanently) must be dropped and counted like any
// other malformed event, while the rest of the stream keeps folding.
func TestIngestHostileEvents(t *testing.T) {
	c := NewCollector(Options{Shards: 1})
	srv := NewIngestServer(c, IngestOptions{})
	addr, err := srv.Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialIngest("tcp:"+addr.String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl.Record(trace.Event{Rank: 1 << 50, Region: "r", Activity: "a", Start: 0, End: 1})
	cl.Record(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: math.NaN(), End: 1})
	cl.Record(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0, End: math.NaN()})
	cl.Record(trace.Event{Rank: 0, Region: "r", Activity: "a", Start: 0.5, End: 1})
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Events()+c.Dropped() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Events != 1 || snap.Dropped != 3 {
		t.Fatalf("events=%d dropped=%d, want 1 and 3", snap.Events, snap.Dropped)
	}
	if snap.Cube.NumProcs() != 1 {
		t.Errorf("hostile rank grew the cube to %d procs", snap.Cube.NumProcs())
	}
	if got := snap.Cube.RegionsTotal(); got != 0.5 {
		t.Errorf("NaN leaked into the cube: total = %g, want 0.5", got)
	}
}

// TestIngestHandleAfterClose: a connection accepted just before Close
// swept the registry must be dropped by handle, not registered — a late
// registration would leave a conn nothing ever closes, hanging
// connWG.Wait (and so Close) until the remote peer went away.
func TestIngestHandleAfterClose(t *testing.T) {
	c := NewCollector(Options{})
	srv := NewIngestServer(c, IngestOptions{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	defer client.Close()
	srv.connWG.Add(1)
	done := make(chan struct{})
	go func() {
		srv.handle(server)
		close(done)
	}()
	// The peer (client side) never sends and never closes: handle must
	// still return promptly by refusing the registration.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handle hung on a connection accepted during shutdown")
	}
}
