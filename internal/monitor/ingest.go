package monitor

// This file implements the network ingest path: a listener that accepts
// wire-protocol connections (internal/tracefmt's binary event stream) and
// feeds each one into the collector through its own SPSC Producer ring.
// Remote instrumented programs — other processes, other hosts — publish
// events through an IngestClient (client.go) and the daemon aggregates
// them exactly as if they had been recorded in-process: the wire codec is
// lossless and the producer path applies Record's validity rule, so the
// resulting cube is bit-identical to an in-process fold of the same
// stream.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

// Ingest metric family names served at /metrics (see
// IngestServer.WriteMetrics).
const (
	MetricIngestConnsTotal   = "loadimb_ingest_connections_total"
	MetricIngestConnsActive  = "loadimb_ingest_connections_active"
	MetricIngestEventsTotal  = "loadimb_ingest_events_total"
	MetricIngestBatchesTotal = "loadimb_ingest_batches_total"
	MetricIngestBytesTotal   = "loadimb_ingest_bytes_total"
	MetricIngestDecodeErrors = "loadimb_ingest_decode_errors_total"
	MetricIngestDroppedTotal = "loadimb_ingest_dropped_total"
	MetricIngestStallsTotal  = "loadimb_ingest_stalls_total"
	MetricIngestConnEvents   = "loadimb_ingest_conn_events_total"
	MetricIngestConnDropped  = "loadimb_ingest_conn_dropped_total"
	MetricIngestConnStalls   = "loadimb_ingest_conn_stalls_total"
)

// DefaultIngestRing is the per-connection ring capacity: larger than the
// in-process default because one connection can carry a whole job's event
// stream, and the ring must absorb the burst between two background
// folds.
const DefaultIngestRing = 1 << 16

// IngestOptions configures an IngestServer.
type IngestOptions struct {
	// Ring is the per-connection ring capacity in events, rounded up to a
	// power of two. 0 means DefaultIngestRing.
	Ring int
	// DropOnFull selects the per-connection overflow policy. False
	// (default) applies backpressure through TCP/UDS flow control: the
	// reader stalls until the fold frees ring space, the kernel buffers
	// fill, the producer's writes block — nothing is lost. True drops
	// overflowing events (counted per connection), never stalling the
	// socket — for observers that prefer losing samples to perturbing
	// anything.
	DropOnFull bool
	// FoldIdle is how long the background folder sleeps after finding all
	// rings empty; while events are flowing it folds continuously. 0 means
	// 500 microseconds.
	FoldIdle time.Duration
}

// IngestServer accepts binary event-stream connections and feeds them
// into a Collector. Create one with NewIngestServer, add listeners with
// Listen, and Close it to stop accepting and release them. A background
// folder goroutine keeps the producer rings shallow between scrapes, so
// ingest throughput is bounded by the fold rate, not the scrape rate.
type IngestServer struct {
	c    *Collector
	opts IngestOptions

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[uint64]*ingestConn
	closed    bool
	foldStop  chan struct{}

	wg     sync.WaitGroup
	connWG sync.WaitGroup

	connSeq      atomic.Uint64
	connsActive  atomic.Int64
	events       atomic.Uint64
	batches      atomic.Uint64
	bytes        atomic.Uint64
	decodeErrors atomic.Uint64
	// droppedGone / stallsGone accumulate the producer-loss counters of
	// closed connections, so the totals keep counting after churn.
	droppedGone atomic.Uint64
	stallsGone  atomic.Uint64
}

// ingestConn is the per-connection state the metrics report on.
type ingestConn struct {
	id     uint64
	addr   string
	conn   net.Conn
	p      *Producer
	events atomic.Uint64
}

// NewIngestServer creates an ingest server feeding the collector and
// starts its background folder.
func NewIngestServer(c *Collector, opts IngestOptions) *IngestServer {
	if opts.Ring <= 0 {
		opts.Ring = DefaultIngestRing
	}
	if opts.FoldIdle <= 0 {
		opts.FoldIdle = 500 * time.Microsecond
	}
	s := &IngestServer{
		c:        c,
		opts:     opts,
		conns:    make(map[uint64]*ingestConn),
		foldStop: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.foldLoop()
	return s
}

// foldLoop drains the collector continuously while events flow and backs
// off to FoldIdle naps when everything is empty. It is the consumer the
// blocking producers depend on: without it, a full ring would stall its
// connection until the next scrape.
func (s *IngestServer) foldLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.foldStop:
			return
		default:
		}
		if s.c.Fold() == 0 {
			select {
			case <-s.foldStop:
				return
			case <-time.After(s.opts.FoldIdle):
			}
		}
	}
}

// ParseIngestSpec splits a listener/dial spec into a network and address:
// "unix:PATH" for a Unix domain socket, "tcp:HOST:PORT" for TCP.
func ParseIngestSpec(spec string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(spec, "unix:"):
		return "unix", spec[len("unix:"):], nil
	case strings.HasPrefix(spec, "tcp:"):
		return "tcp", spec[len("tcp:"):], nil
	default:
		return "", "", fmt.Errorf("ingest spec %q: want unix:PATH or tcp:HOST:PORT", spec)
	}
}

// Listen adds a listener for the given spec ("unix:PATH" or
// "tcp:HOST:PORT") and starts accepting connections on it. A stale socket
// file at a unix path is removed first, so a daemon restarted after a
// crash rebinds instead of failing on the leftover inode.
func (s *IngestServer) Listen(spec string) (net.Addr, error) {
	network, addr, err := ParseIngestSpec(spec)
	if err != nil {
		return nil, err
	}
	if network == "unix" {
		_ = os.Remove(addr)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("ingest listen %s: %w", spec, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return nil, errors.New("ingest server closed")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *IngestServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed (or a fatal accept error): stop this loop;
			// transient per-connection errors do not reach here for the
			// stream listeners we use.
			return
		}
		s.connWG.Add(1)
		go s.handle(conn)
	}
}

// handle drains one connection: handshake, frames, events into this
// connection's producer ring. Decode errors terminate the connection (the
// stream is corrupt beyond resync) but never the server.
func (s *IngestServer) handle(conn net.Conn) {
	defer s.connWG.Done()
	defer conn.Close()
	ic := &ingestConn{
		id:   s.connSeq.Add(1),
		addr: conn.RemoteAddr().String(),
		conn: conn,
	}
	s.mu.Lock()
	if s.closed {
		// Close() already swept s.conns; registering now would leave a
		// connection it never closes, hanging connWG.Wait() until the
		// remote peer goes away. Drop the connection instead.
		s.mu.Unlock()
		return
	}
	ic.p = s.c.Producer(ProducerOptions{Ring: s.opts.Ring, DropOnFull: s.opts.DropOnFull})
	s.conns[ic.id] = ic
	s.mu.Unlock()
	s.connsActive.Add(1)
	defer func() {
		ic.p.Close()
		s.droppedGone.Add(ic.p.Dropped())
		s.stallsGone.Add(ic.p.Stalls())
		s.connsActive.Add(-1)
		s.mu.Lock()
		delete(s.conns, ic.id)
		s.mu.Unlock()
	}()

	// No bufio here: NewWireDecoder buffers the stream itself, and a
	// second layer would just add one more copy per byte on the hot path.
	cr := &countingReader{r: conn, n: &s.bytes}
	dec := tracefmt.NewWireDecoder(cr)
	sp := slabPool.Get().(*[]trace.Event)
	batch := *sp
	for {
		var err error
		batch, err = dec.DecodeBatch(batch[:0])
		if err == io.EOF {
			break
		}
		if err != nil {
			s.decodeErrors.Add(1)
			break
		}
		s.batches.Add(1)
		s.events.Add(uint64(len(batch)))
		ic.events.Add(uint64(len(batch)))
		ic.p.RecordBatch(batch)
	}
	*sp = batch[:0]
	slabPool.Put(sp)
}

// countingReader counts the bytes read from the underlying connection.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// Close stops accepting, closes every listener, waits for in-flight
// connections to finish, stops the background folder, and folds whatever
// is left so the collector's next snapshot is complete.
func (s *IngestServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := s.listeners
	s.listeners = nil
	// Unblock in-flight connection readers too: a client that never
	// closes its end would otherwise hold Close forever.
	for _, ic := range s.conns {
		_ = ic.conn.Close()
	}
	s.mu.Unlock()
	var first error
	for _, ln := range listeners {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.connWG.Wait()
	close(s.foldStop)
	s.wg.Wait()
	s.c.Fold()
	return first
}

// Dropped returns the total ring-overflow drops across all connections,
// past and present (only nonzero in DropOnFull mode).
func (s *IngestServer) Dropped() uint64 {
	total := s.droppedGone.Load()
	s.mu.Lock()
	for _, ic := range s.conns {
		total += ic.p.Dropped()
	}
	s.mu.Unlock()
	return total
}

// Events returns the total events decoded from all connections.
func (s *IngestServer) Events() uint64 { return s.events.Load() }

// WriteMetrics appends the ingest counters to a Prometheus text
// exposition: totals for connections, events, batches, bytes, decode
// errors, ring drops and backpressure stalls, plus per-active-connection
// event/drop/stall counters labeled by connection id and remote address.
func (s *IngestServer) WriteMetrics(w io.Writer) error {
	m := &writer{w: w}
	var dropped, stalls uint64
	s.mu.Lock()
	conns := make([]*ingestConn, 0, len(s.conns))
	for _, ic := range s.conns {
		conns = append(conns, ic)
	}
	s.mu.Unlock()
	sort.Slice(conns, func(i, j int) bool { return conns[i].id < conns[j].id })
	dropped, stalls = s.droppedGone.Load(), s.stallsGone.Load()
	for _, ic := range conns {
		dropped += ic.p.Dropped()
		stalls += ic.p.Stalls()
	}

	m.header(MetricIngestConnsTotal, "Ingest connections accepted.", "counter")
	m.sample(MetricIngestConnsTotal, nil, float64(s.connSeq.Load()))
	m.header(MetricIngestConnsActive, "Ingest connections currently open.", "gauge")
	m.sample(MetricIngestConnsActive, nil, float64(s.connsActive.Load()))
	m.header(MetricIngestEventsTotal, "Events decoded from ingest connections.", "counter")
	m.sample(MetricIngestEventsTotal, nil, float64(s.events.Load()))
	m.header(MetricIngestBatchesTotal, "Wire frames decoded from ingest connections.", "counter")
	m.sample(MetricIngestBatchesTotal, nil, float64(s.batches.Load()))
	m.header(MetricIngestBytesTotal, "Bytes read from ingest connections.", "counter")
	m.sample(MetricIngestBytesTotal, nil, float64(s.bytes.Load()))
	m.header(MetricIngestDecodeErrors, "Ingest connections terminated by a corrupt stream.", "counter")
	m.sample(MetricIngestDecodeErrors, nil, float64(s.decodeErrors.Load()))
	m.header(MetricIngestDroppedTotal, "Events dropped because a connection's ring was full.", "counter")
	m.sample(MetricIngestDroppedTotal, nil, float64(dropped))
	m.header(MetricIngestStallsTotal, "Backpressure stall episodes across ingest connections.", "counter")
	m.sample(MetricIngestStallsTotal, nil, float64(stalls))
	if len(conns) > 0 {
		m.header(MetricIngestConnEvents, "Events decoded from each open connection.", "counter")
		m.header(MetricIngestConnDropped, "Ring-overflow drops of each open connection.", "counter")
		m.header(MetricIngestConnStalls, "Backpressure stalls of each open connection.", "counter")
		for _, ic := range conns {
			lbls := []string{label("conn", strconv.FormatUint(ic.id, 10)), label("addr", ic.addr)}
			m.sample(MetricIngestConnEvents, lbls, float64(ic.events.Load()))
			m.sample(MetricIngestConnDropped, lbls, float64(ic.p.Dropped()))
			m.sample(MetricIngestConnStalls, lbls, float64(ic.p.Stalls()))
		}
	}
	return m.err
}
