package monitor

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"loadimb/internal/temporal"
)

// Metric family names served at /metrics. Every dispersion gauge carries
// the value the offline analysis (core.Analyze) computes for the same
// cube.
const (
	MetricEventsTotal   = "loadimb_events_total"
	MetricDroppedTotal  = "loadimb_events_dropped_total"
	MetricProcs         = "loadimb_procs"
	MetricProgramTime   = "loadimb_program_time_seconds"
	MetricInstrumented  = "loadimb_instrumented_seconds"
	MetricRegionSeconds = "loadimb_region_seconds"
	MetricActSeconds    = "loadimb_activity_seconds"
	MetricProcSeconds   = "loadimb_proc_seconds"
	MetricIDCell        = "loadimb_id_ij"
	MetricIDActivity    = "loadimb_id_a"
	MetricSIDActivity   = "loadimb_sid_a"
	MetricIDRegion      = "loadimb_id_c"
	MetricSIDRegion     = "loadimb_sid_c"
	MetricIDProc        = "loadimb_id_p"
	MetricGini          = "loadimb_gini"
	MetricCellEvents    = "loadimb_cell_events_total"
	MetricCellDurMean   = "loadimb_event_duration_seconds_mean"
	MetricCellDurStddev = "loadimb_event_duration_seconds_stddev"
	MetricWindowID      = "loadimb_window_id"
	MetricWindowGini    = "loadimb_window_gini"
	MetricPhaseCurrent  = "loadimb_phase_current"
	MetricPhaseChanges  = "loadimb_phase_changes_total"
	MetricPhaseSeconds  = "loadimb_phase_seconds"
	MetricDiagOutliers  = "loadimb_diag_outlier_ranks"
	MetricDiagCohorts   = "loadimb_diag_cohorts"
	MetricDiagScore     = "loadimb_diag_score"
)

// writer accumulates Prometheus text-format lines, remembering the first
// write error so call sites stay linear.
type writer struct {
	w   io.Writer
	err error
}

func (m *writer) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

// header emits the HELP/TYPE preamble of one metric family.
func (m *writer) header(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line. Non-finite values are skipped: Prometheus
// would accept NaN but a NaN gauge only poisons downstream queries.
func (m *writer) sample(name string, labels []string, v float64) {
	if m.err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	lbl := ""
	if len(labels) > 0 {
		lbl = "{" + strings.Join(labels, ",") + "}"
	}
	m.printf("%s%s %s\n", name, lbl, strconv.FormatFloat(v, 'g', -1, 64))
}

// label renders one escaped key="value" pair.
func label(key, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(value) + `"`
}

// WriteMetrics renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): the collector counters, the cube marginals, and
// every dispersion index of the paper — ID_ij per cell, ID_A/SID_A per
// activity, ID_C/SID_C per region, ID_P per (region, processor), plus the
// Gini coefficient of the per-processor total times. Gauge values agree
// with core.Analyze on the snapshot cube exactly (they are computed by
// the same view functions).
func WriteMetrics(w io.Writer, snap *Snapshot) error {
	m := &writer{w: w}
	m.header(MetricEventsTotal, "Events recorded by the collector.", "counter")
	m.sample(MetricEventsTotal, nil, float64(snap.Events))
	m.header(MetricDroppedTotal, "Malformed events rejected by the collector.", "counter")
	m.sample(MetricDroppedTotal, nil, float64(snap.Dropped))
	cube := snap.Cube
	if cube == nil || cube.ProgramTime() <= 0 {
		// Nothing measured yet: serve the counters only.
		return m.err
	}
	regions, activities := cube.Regions(), cube.Activities()

	m.header(MetricProcs, "Processors observed in the trace.", "gauge")
	m.sample(MetricProcs, nil, float64(cube.NumProcs()))
	m.header(MetricProgramTime, "Wall clock time T of the program so far.", "gauge")
	m.sample(MetricProgramTime, nil, cube.ProgramTime())
	m.header(MetricInstrumented, "Wall clock time of the instrumented regions.", "gauge")
	m.sample(MetricInstrumented, nil, cube.RegionsTotal())

	m.header(MetricRegionSeconds, "Wall clock time t_i of each code region.", "gauge")
	for i, name := range regions {
		t, err := cube.RegionTime(i)
		if err != nil {
			return err
		}
		m.sample(MetricRegionSeconds, []string{label("region", name)}, t)
	}
	m.header(MetricActSeconds, "Wall clock time T_j of each activity.", "gauge")
	for j, name := range activities {
		t, err := cube.ActivityTime(j)
		if err != nil {
			return err
		}
		m.sample(MetricActSeconds, []string{label("activity", name)}, t)
	}
	m.header(MetricProcSeconds, "Total instrumented time of each processor.", "gauge")
	for p := 0; p < cube.NumProcs(); p++ {
		t, err := cube.ProcTotalTime(p)
		if err != nil {
			return err
		}
		m.sample(MetricProcSeconds, []string{label("proc", strconv.Itoa(p))}, t)
	}

	// The dispersion views, computed once per snapshot by the same code
	// paths core.Analyze uses and memoized on the snapshot, so repeated
	// scrapes of an unchanged snapshot serve cached values.
	views, err := snap.Views()
	if err != nil {
		return err
	}
	m.header(MetricIDCell, "Index of dispersion ID_ij of cell (region, activity).", "gauge")
	for i := range views.Cells {
		for j := range views.Cells[i] {
			if !views.Cells[i][j].Defined {
				continue
			}
			m.sample(MetricIDCell,
				[]string{label("region", regions[i]), label("activity", activities[j])},
				views.Cells[i][j].ID)
		}
	}
	m.header(MetricIDActivity, "Activity-view index of dispersion ID_A.", "gauge")
	m.header(MetricSIDActivity, "Scaled activity-view index SID_A.", "gauge")
	for _, a := range views.Activities {
		if !a.Defined {
			continue
		}
		m.sample(MetricIDActivity, []string{label("activity", a.Name)}, a.ID)
		m.sample(MetricSIDActivity, []string{label("activity", a.Name)}, a.SID)
	}
	m.header(MetricIDRegion, "Code-region-view index of dispersion ID_C.", "gauge")
	m.header(MetricSIDRegion, "Scaled code-region-view index SID_C.", "gauge")
	for _, r := range views.Regions {
		if !r.Defined {
			continue
		}
		m.sample(MetricIDRegion, []string{label("region", r.Name)}, r.ID)
		m.sample(MetricSIDRegion, []string{label("region", r.Name)}, r.SID)
	}
	m.header(MetricIDProc, "Processor-view dispersion ID_P of (region, processor).", "gauge")
	for i := range views.Processors.ByRegion {
		for p := range views.Processors.ByRegion[i] {
			d := views.Processors.ByRegion[i][p]
			if !d.Defined {
				continue
			}
			m.sample(MetricIDProc,
				[]string{label("region", regions[i]), label("proc", strconv.Itoa(p))},
				d.ID)
		}
	}
	m.header(MetricGini, "Gini coefficient of the per-processor total times.", "gauge")
	m.sample(MetricGini, nil, giniOf(snap.ProcTotals()))

	// Per-cell event-duration statistics from the streaming accumulators.
	m.header(MetricCellEvents, "Events folded into cell (region, activity).", "counter")
	m.header(MetricCellDurMean, "Mean event duration of cell (region, activity).", "gauge")
	m.header(MetricCellDurStddev, "Event duration standard deviation of cell (region, activity).", "gauge")
	for i := range snap.CellStats {
		for j := range snap.CellStats[i] {
			acc := snap.CellStats[i][j]
			if acc.N() == 0 {
				continue
			}
			lbls := []string{label("region", regions[i]), label("activity", activities[j])}
			m.sample(MetricCellEvents, lbls, float64(acc.N()))
			m.sample(MetricCellDurMean, lbls, acc.Mean())
			m.sample(MetricCellDurStddev, lbls, acc.StdDev())
		}
	}

	if len(snap.Windows) > 0 {
		last := snap.Windows[len(snap.Windows)-1]
		m.header(MetricWindowID, "Dispersion of per-processor load in the latest window.", "gauge")
		if last.ID != nil {
			// An all-idle window has no defined dispersion; omitting the
			// sample beats serving a misleading 0 ("perfectly balanced").
			m.sample(MetricWindowID, []string{label("window", strconv.Itoa(last.Index))}, *last.ID)
		}
		m.header(MetricWindowGini, "Gini of per-processor load in the latest window.", "gauge")
		m.sample(MetricWindowGini, []string{label("window", strconv.Itoa(last.Index))}, last.Gini)
	}

	// Live phase detection: the streaming PELT segmentation of the window
	// trajectory (see /phases.json for the full boundary history).
	if len(snap.Phases) > 0 {
		current := snap.Phases[len(snap.Phases)-1]
		m.header(MetricPhaseCurrent, "1 for the label of the phase the run is currently in, 0 for the others.", "gauge")
		for _, l := range []string{temporal.LabelIdle, temporal.LabelQuiet, temporal.LabelHot} {
			v := 0.0
			if l == current.Label {
				v = 1
			}
			m.sample(MetricPhaseCurrent, []string{label("label", l)}, v)
		}
		m.header(MetricPhaseChanges, "Phase boundaries detected in the trajectory so far.", "counter")
		m.sample(MetricPhaseChanges, nil, float64(len(snap.Phases)-1))
		m.header(MetricPhaseSeconds, "Virtual time spent in phases of each label so far.", "gauge")
		bylabel := map[string]float64{}
		for _, ph := range snap.Phases {
			bylabel[ph.Label] += ph.End - ph.Start
		}
		for _, l := range []string{temporal.LabelIdle, temporal.LabelQuiet, temporal.LabelHot} {
			if t, ok := bylabel[l]; ok {
				m.sample(MetricPhaseSeconds, []string{label("label", l)}, t)
			}
		}
	}

	// Automatic diagnosis: the rank-similarity findings, memoized per
	// fold generation like the views above.
	if rep := snap.Diagnosis(); rep != nil {
		m.header(MetricDiagOutliers, "Distinct ranks currently flagged as diverged from their cohort.", "gauge")
		distinct := map[int]bool{}
		for _, f := range rep.Findings {
			distinct[f.Rank] = true
		}
		m.sample(MetricDiagOutliers, nil, float64(len(distinct)))
		m.header(MetricDiagCohorts, "Rank-similarity cohorts detected in each phase.", "gauge")
		for _, pd := range rep.Phases {
			m.sample(MetricDiagCohorts, []string{label("phase", strconv.Itoa(pd.Phase))}, float64(len(pd.Cohorts)))
		}
		m.header(MetricDiagScore, "Divergence score (pooled-scatter units) of each finding.", "gauge")
		for _, f := range rep.Findings {
			rank := strconv.Itoa(f.Rank)
			if f.RankLabel != "" {
				rank = f.RankLabel
			}
			lbls := []string{label("rank", rank), label("phase", strconv.Itoa(f.Phase))}
			if len(f.Dominant) > 0 {
				lbls = append(lbls, label("dominant", f.Dominant[0].Dimension))
			}
			m.sample(MetricDiagScore, lbls, f.Score)
		}
	}
	return m.err
}
