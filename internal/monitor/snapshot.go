package monitor

import (
	"fmt"
	"sync"

	"loadimb/internal/core"
	"loadimb/internal/diagnose"
	"loadimb/internal/stats"
	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

// Snapshot is an immutable view of everything the collector has folded
// in: the live measurement cube, event counters, and the windowed
// imbalance trajectory. Snapshots are safe to share between goroutines;
// none of their fields are mutated after publication.
type Snapshot struct {
	// Cube is the live t_ijp cube, aggregated exactly as an offline
	// Log.Aggregate of the same events would be. It is nil until the
	// first event has been folded.
	Cube *trace.Cube
	// Events is the number of events folded into Cube — exactly the
	// events the cube accounts for, never including ones recorded
	// concurrently with the snapshot. Dropped is the number of malformed
	// events rejected up to the fold.
	Events, Dropped uint64
	// Span is the largest event end time seen — the live estimate of
	// the program wall clock time.
	Span float64
	// CellStats[i][j] is the streaming summary of the individual event
	// durations of cell (i, j) — the per-operation statistics the cube
	// (which only keeps sums) cannot answer.
	CellStats [][]stats.Accumulator
	// Windows is the temporal imbalance trajectory, one entry per
	// non-empty window in time order; empty when windowing is disabled.
	// For a bounded (decimated) series this is the retained
	// full-resolution ring; Coarse carries the older trajectory.
	Windows []WindowStat
	// Coarse is the trajectory of the decimated tail of a bounded window
	// series — the pre-ring history at Series.CoarseWindow resolution.
	// Nil until the run outgrows the window cap.
	Coarse []WindowStat
	// Series holds the raw per-window per-processor busy vectors the
	// trajectory was computed from — the mergeable document served at
	// /windows.json, which the federation layer combines across
	// endpoints. It is nil when windowing is disabled.
	Series *temporal.Series
	// Phases is the live phase segmentation of the trajectory — the
	// streaming PELT optimum over Windows, identical to what the offline
	// Segment finds on the same trajectory — enriched with per-phase
	// dispersion indices and hot activities (served at /phases.json).
	// Empty when windowing is disabled or no window is non-empty.
	Phases []temporal.PhaseSummary
	// Gen is the fold generation of the snapshot: it increases every time
	// a publisher builds a snapshot with new content. Two snapshots from
	// the same source with equal Gen are the same snapshot, so scrape
	// handlers can skip recomputation entirely.
	Gen uint64
	// Boot distinguishes the publishing process incarnation: Gen restarts
	// from zero when a collector restarts, so scrapers cache on the
	// (Boot, Gen) pair — the snapshot ETag — never on Gen alone. 0 for
	// snapshots built outside a publisher (tests constructing literals).
	Boot uint64
	// RankLabels optionally names each rank for display in diagnosis
	// findings. The collector leaves it nil (ranks are just numbers); the
	// federation layer sets job-namespaced labels ("job/3") before
	// publishing, matching the merged cube's rank space.
	RankLabels []string

	// views memoizes the dispersion views of Cube: the first scrape of a
	// snapshot computes them once, every later handler and endpoint reuses
	// them. Snapshots are immutable, so the memo can never go stale.
	viewsOnce sync.Once
	views     *Views
	viewsErr  error

	// diag memoizes the snapshot's diagnosis the same way: the collector
	// re-serves the identical Snapshot pointer while its Gen is unchanged,
	// so the diagnosis is recomputed only when the fold content actually
	// moved — the amortization the live endpoints rely on.
	diagOnce sync.Once
	diag     *diagnose.Report
}

// Views holds the paper's dispersion views of one snapshot cube — exactly
// what core.Analyze computes for the same cube, shared by every scrape
// handler of the snapshot.
type Views struct {
	// Cells is the ID_ij matrix (Table 2).
	Cells [][]core.CellDispersion
	// Activities is the activity view (Table 3).
	Activities []core.ActivitySummary
	// Regions is the code-region view (Table 4).
	Regions []core.RegionSummary
	// Processors is the processor view (Section 3.1).
	Processors *core.ProcessorView
}

// ETag returns the snapshot's entity tag: the (boot, generation) pair
// that identifies its content. Gen alone would be ambiguous — it
// restarts from zero with the publishing process — so the boot nonce is
// part of the tag; a scraper that caches on the ETag therefore refetches
// after a restart instead of treating the reset as "unchanged". Empty
// for snapshots without a boot nonce (hand-built test literals).
func (s *Snapshot) ETag() string {
	if s.Boot == 0 {
		return ""
	}
	return fmt.Sprintf("\"b%x-g%d\"", s.Boot, s.Gen)
}

// Views returns the dispersion views of the snapshot cube, computing them
// on the first call and memoizing the result; concurrent callers share
// one computation. It returns (nil, nil) while the snapshot has no cube.
func (s *Snapshot) Views() (*Views, error) {
	s.viewsOnce.Do(func() {
		if s.Cube == nil {
			return
		}
		v := &Views{}
		if v.Cells, s.viewsErr = core.Dispersions(s.Cube, core.Options{}); s.viewsErr != nil {
			return
		}
		if v.Activities, s.viewsErr = core.ActivityViewFromCells(s.Cube, v.Cells); s.viewsErr != nil {
			return
		}
		if v.Regions, s.viewsErr = core.CodeRegionViewFromCells(s.Cube, v.Cells); s.viewsErr != nil {
			return
		}
		if v.Processors, s.viewsErr = core.NewProcessorView(s.Cube, core.Options{}); s.viewsErr != nil {
			return
		}
		s.views = v
	})
	return s.views, s.viewsErr
}

// Diagnosis returns the automatic performance diagnosis of the snapshot
// — per-phase rank cohorts and divergence findings over the window
// series — computing it on the first call and memoizing the result, the
// same amortization as Views: while the fold generation is unchanged the
// collector re-serves this very snapshot, so concurrent scrapes of
// /diagnose.json, /metrics and the dashboard share one computation per
// Gen. It returns nil when windowing is disabled.
func (s *Snapshot) Diagnosis() *diagnose.Report {
	s.diagOnce.Do(func() {
		if s.Series == nil {
			return
		}
		phases := make([]temporal.Phase, len(s.Phases))
		for i, ps := range s.Phases {
			phases[i] = ps.Phase()
		}
		s.diag = diagnose.Diagnose(s.Series, phases, diagnose.Options{RankLabels: s.RankLabels})
	})
	return s.diag
}

// WindowStat summarizes one temporal window of the run; it is the
// shared windowing engine's summary type, re-exported so existing
// consumers of the monitor API keep compiling unchanged.
type WindowStat = temporal.WindowStat

// build assembles an immutable snapshot from the current fold state.
func (s *foldState) build(events, dropped, gen uint64) *Snapshot {
	snap := &Snapshot{Events: events, Dropped: dropped, Span: s.span, Gen: gen}
	if len(s.regions) > 0 && len(s.activities) > 0 && s.procs > 0 {
		cube, err := trace.NewCube(s.regions, s.activities, s.procs)
		if err != nil {
			// Names were deduplicated by the index maps and dims
			// checked above; construction cannot fail.
			panic(fmt.Sprintf("monitor: building snapshot cube: %v", err))
		}
		for i := range s.totals {
			for j := range s.totals[i] {
				for p, t := range s.totals[i][j] {
					if err := cube.Set(i, j, p, t); err != nil {
						panic(fmt.Sprintf("monitor: snapshot cell (%d,%d,%d): %v", i, j, p, err))
					}
				}
			}
		}
		// Same convention as Log.Aggregate: the program wall clock is
		// the longest rank timeline when that exceeds the instrumented
		// total.
		if s.span > cube.RegionsTotal() {
			if err := cube.SetProgramTime(s.span); err != nil {
				panic(fmt.Sprintf("monitor: snapshot program time: %v", err))
			}
		}
		// Marginals are computed once at fold time; every scrape handler
		// then reads them O(1) instead of rescanning the cube.
		cube.Precompute()
		snap.Cube = cube
		snap.CellStats = make([][]stats.Accumulator, len(s.durs))
		for i := range s.durs {
			snap.CellStats[i] = append([]stats.Accumulator(nil), s.durs[i]...)
		}
	}
	if s.tw != nil {
		snap.Series = s.tw.Series()
		snap.Windows = snap.Series.Stats()
		snap.Coarse = snap.Series.CoarseStats()
		if s.seg != nil {
			// Sync rewinds the incremental segmenter only past the windows
			// that actually changed since the last snapshot (usually just
			// the still-growing tail), then the pruned DP extends over the
			// new suffix.
			s.seg.Sync(snap.Windows)
			snap.Phases = temporal.SummarizePhases(snap.Series, s.seg.Phases())
		}
	}
	return snap
}

// giniOf is stats.Gini.Of with tiny negative cancellation noise clamped;
// the clamp lives with the shared windowing engine.
func giniOf(vals []float64) float64 { return temporal.GiniOf(vals) }

// ProcTotals returns the per-processor total instrumented times of the
// snapshot cube — the vector whose Lorenz curve and Gini coefficient the
// exposition endpoints serve. It returns nil before any event arrived.
func (s *Snapshot) ProcTotals() []float64 {
	if s.Cube == nil {
		return nil
	}
	out := make([]float64, s.Cube.NumProcs())
	for p := range out {
		t, err := s.Cube.ProcTotalTime(p)
		if err != nil {
			// p is in range by construction.
			panic(fmt.Sprintf("monitor: proc total %d: %v", p, err))
		}
		out[p] = t
	}
	return out
}
