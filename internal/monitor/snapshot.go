package monitor

import (
	"fmt"
	"sort"
	"sync"

	"loadimb/internal/core"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

// Snapshot is an immutable view of everything the collector has folded
// in: the live measurement cube, event counters, and the windowed
// imbalance trajectory. Snapshots are safe to share between goroutines;
// none of their fields are mutated after publication.
type Snapshot struct {
	// Cube is the live t_ijp cube, aggregated exactly as an offline
	// Log.Aggregate of the same events would be. It is nil until the
	// first event has been folded.
	Cube *trace.Cube
	// Events is the number of events folded into Cube — exactly the
	// events the cube accounts for, never including ones recorded
	// concurrently with the snapshot. Dropped is the number of malformed
	// events rejected up to the fold.
	Events, Dropped uint64
	// Span is the largest event end time seen — the live estimate of
	// the program wall clock time.
	Span float64
	// CellStats[i][j] is the streaming summary of the individual event
	// durations of cell (i, j) — the per-operation statistics the cube
	// (which only keeps sums) cannot answer.
	CellStats [][]stats.Accumulator
	// Windows is the temporal imbalance trajectory, one entry per
	// non-empty window in time order; empty when windowing is disabled.
	Windows []WindowStat
	// Gen is the fold generation of the snapshot: it increases every time
	// a publisher builds a snapshot with new content. Two snapshots from
	// the same source with equal Gen are the same snapshot, so scrape
	// handlers can skip recomputation entirely.
	Gen uint64

	// views memoizes the dispersion views of Cube: the first scrape of a
	// snapshot computes them once, every later handler and endpoint reuses
	// them. Snapshots are immutable, so the memo can never go stale.
	viewsOnce sync.Once
	views     *Views
	viewsErr  error
}

// Views holds the paper's dispersion views of one snapshot cube — exactly
// what core.Analyze computes for the same cube, shared by every scrape
// handler of the snapshot.
type Views struct {
	// Cells is the ID_ij matrix (Table 2).
	Cells [][]core.CellDispersion
	// Activities is the activity view (Table 3).
	Activities []core.ActivitySummary
	// Regions is the code-region view (Table 4).
	Regions []core.RegionSummary
	// Processors is the processor view (Section 3.1).
	Processors *core.ProcessorView
}

// Views returns the dispersion views of the snapshot cube, computing them
// on the first call and memoizing the result; concurrent callers share
// one computation. It returns (nil, nil) while the snapshot has no cube.
func (s *Snapshot) Views() (*Views, error) {
	s.viewsOnce.Do(func() {
		if s.Cube == nil {
			return
		}
		v := &Views{}
		if v.Cells, s.viewsErr = core.Dispersions(s.Cube, core.Options{}); s.viewsErr != nil {
			return
		}
		if v.Activities, s.viewsErr = core.ActivityViewFromCells(s.Cube, v.Cells); s.viewsErr != nil {
			return
		}
		if v.Regions, s.viewsErr = core.CodeRegionViewFromCells(s.Cube, v.Cells); s.viewsErr != nil {
			return
		}
		if v.Processors, s.viewsErr = core.NewProcessorView(s.Cube, core.Options{}); s.viewsErr != nil {
			return
		}
		s.views = v
	})
	return s.views, s.viewsErr
}

// WindowStat summarizes one temporal window of the run: how busy each
// processor was within it and how dispersed those busy times are. A
// rising ID across windows is temporal imbalance the whole-run indices
// average away.
type WindowStat struct {
	// Index is the window number; the window covers virtual time
	// [Start, End).
	Index int     `json:"index"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Events is the number of (possibly clipped) events in the window.
	Events int `json:"events"`
	// Busy is the total processor-seconds spent in the window.
	Busy float64 `json:"busy"`
	// ID is the paper's Euclidean index of dispersion of the
	// standardized per-processor busy times within the window. It is nil
	// — served as an explicit JSON null — when the dispersion is
	// undefined, i.e. when the window recorded no busy time at all (only
	// zero-duration events): an all-idle window has no load to disperse,
	// which is not the same thing as a perfectly balanced one.
	ID *float64 `json:"id"`
	// Gini is the Gini coefficient of the per-processor busy times.
	Gini float64 `json:"gini"`
}

// build assembles an immutable snapshot from the current fold state.
func (s *foldState) build(window float64, events, dropped, gen uint64) *Snapshot {
	snap := &Snapshot{Events: events, Dropped: dropped, Span: s.span, Gen: gen}
	if len(s.regions) > 0 && len(s.activities) > 0 && s.procs > 0 {
		cube, err := trace.NewCube(s.regions, s.activities, s.procs)
		if err != nil {
			// Names were deduplicated by the index maps and dims
			// checked above; construction cannot fail.
			panic(fmt.Sprintf("monitor: building snapshot cube: %v", err))
		}
		for i := range s.totals {
			for j := range s.totals[i] {
				for p, t := range s.totals[i][j] {
					if err := cube.Set(i, j, p, t); err != nil {
						panic(fmt.Sprintf("monitor: snapshot cell (%d,%d,%d): %v", i, j, p, err))
					}
				}
			}
		}
		// Same convention as Log.Aggregate: the program wall clock is
		// the longest rank timeline when that exceeds the instrumented
		// total.
		if s.span > cube.RegionsTotal() {
			if err := cube.SetProgramTime(s.span); err != nil {
				panic(fmt.Sprintf("monitor: snapshot program time: %v", err))
			}
		}
		// Marginals are computed once at fold time; every scrape handler
		// then reads them O(1) instead of rescanning the cube.
		cube.Precompute()
		snap.Cube = cube
		snap.CellStats = make([][]stats.Accumulator, len(s.durs))
		for i := range s.durs {
			snap.CellStats[i] = append([]stats.Accumulator(nil), s.durs[i]...)
		}
	}
	if window > 0 && len(s.windows) > 0 {
		idxs := make([]int, 0, len(s.windows))
		for w := range s.windows {
			idxs = append(idxs, w)
		}
		sort.Ints(idxs)
		for _, w := range idxs {
			acc := s.windows[w]
			ws := WindowStat{
				Index:  w,
				Start:  float64(w) * window,
				End:    float64(w+1) * window,
				Events: acc.events,
			}
			// Ranks idle for the whole window count as zeros: an idle
			// processor is the imbalance, not missing data.
			procSeconds := append([]float64(nil), acc.procSeconds...)
			for len(procSeconds) < s.procs {
				procSeconds = append(procSeconds, 0)
			}
			ws.Busy = stats.Sum(procSeconds)
			if id, err := stats.EuclideanFromBalance(procSeconds); err == nil {
				ws.ID = &id
			}
			ws.Gini = giniOf(procSeconds)
			snap.Windows = append(snap.Windows, ws)
		}
	}
	return snap
}

// giniOf is stats.Gini.Of with tiny negative cancellation noise clamped:
// perfectly balanced loads can come out as -1e-16, and a served Gini
// coefficient must stay in [0, 1).
func giniOf(vals []float64) float64 {
	g := stats.Gini.Of(vals)
	if g < 0 {
		return 0
	}
	return g
}

// ProcTotals returns the per-processor total instrumented times of the
// snapshot cube — the vector whose Lorenz curve and Gini coefficient the
// exposition endpoints serve. It returns nil before any event arrived.
func (s *Snapshot) ProcTotals() []float64 {
	if s.Cube == nil {
		return nil
	}
	out := make([]float64, s.Cube.NumProcs())
	for p := range out {
		t, err := s.Cube.ProcTotalTime(p)
		if err != nil {
			// p is in range by construction.
			panic(fmt.Sprintf("monitor: proc total %d: %v", p, err))
		}
		out[p] = t
	}
	return out
}
