package monitor

// This file implements the collector's high-throughput producer path: a
// single-producer single-consumer (SPSC) ring buffer of events per
// producer, drained by the fold under foldMu. One producer is one event
// source — a rank's instrumentation thread, or one ingest connection —
// and owns its ring exclusively, so the steady-state publish path is two
// atomic loads, a memcpy into the ring, and one atomic store: no locks,
// no channel, and zero heap allocations (the acceptance guard is
// TestProducerRecordBatchAllocs). The consumer copies ring spans into
// pooled slabs before folding, releasing ring space to the producer as
// early as possible.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"loadimb/internal/trace"
)

const (
	// DefaultRingSize is the per-producer ring capacity in events. At the
	// targeted ingest rate (~10M events/sec per collector) the default
	// absorbs a few milliseconds of burst per producer between folds.
	DefaultRingSize = 1 << 14
	// slabSize is the event capacity of the pooled drain slabs, and the
	// decode batch size of the ingest path.
	slabSize = 4096
	// maxRecycledSlab bounds the shard buffers kept for reuse across
	// drains: a burst may grow a buffer far beyond the steady state, and
	// recycling a monster would pin its memory forever.
	maxRecycledSlab = 1 << 16
)

// slabPool recycles the drain-side event slabs: ring drains, shift
// scratch and ingest decode buffers all draw from it, so the steady state
// of every batched path reuses a handful of arrays instead of allocating
// per cycle.
var slabPool = sync.Pool{New: func() any {
	s := make([]trace.Event, 0, slabSize)
	return &s
}}

// ProducerOptions configures one SPSC producer handle.
type ProducerOptions struct {
	// Ring is the ring capacity in events, rounded up to a power of two.
	// 0 means DefaultRingSize.
	Ring int
	// DropOnFull selects the overflow policy. False (default) applies
	// backpressure: RecordBatch spins (yielding) until the consumer frees
	// space — nothing is lost, the producer stalls. True drops the
	// overflowing events and counts them (Dropped), never blocking — the
	// policy for producers that must not be perturbed by a slow observer.
	DropOnFull bool
}

// A Producer is a lock-free single-producer handle onto a collector: an
// SPSC ring the collector drains at every fold. Exactly one goroutine may
// call Record/RecordBatch/Close on a given Producer; any number of
// producers may feed the same collector concurrently. Create one with
// Collector.Producer, and Close it when the source ends so the collector
// can release the ring after the final drain.
type Producer struct {
	c    *Collector
	ring []trace.Event
	mask uint64
	drop bool

	// head is the consumer cursor, tail the producer cursor; both grow
	// without wrapping (slot = cursor & mask). The pads keep the two
	// cursors on separate cache lines: the producer spins on head while
	// the consumer stores it, and false sharing with tail would put the
	// producer's own stores on the same contended line.
	_      [64]byte
	head   atomic.Uint64
	_      [56]byte
	tail   atomic.Uint64
	_      [56]byte
	closed atomic.Bool

	// dropped counts events discarded because the ring was full (only in
	// DropOnFull mode); stalls counts backpressure wait episodes (only in
	// blocking mode). Both are producer-loss accounting, distinct from the
	// collector's malformed-event counter.
	dropped atomic.Uint64
	stalls  atomic.Uint64
}

// Producer registers and returns a new SPSC producer handle on the
// collector.
func (c *Collector) Producer(opts ProducerOptions) *Producer {
	n := opts.Ring
	if n <= 0 {
		n = DefaultRingSize
	}
	pow := 1
	for pow < n {
		pow *= 2
	}
	p := &Producer{
		c:    c,
		ring: make([]trace.Event, pow),
		mask: uint64(pow - 1),
		drop: opts.DropOnFull,
	}
	c.prodMu.Lock()
	c.producers = append(c.producers, p)
	c.prodMu.Unlock()
	return p
}

// Record publishes one event; it is RecordBatch of a one-event batch.
func (p *Producer) Record(e trace.Event) {
	batch := [1]trace.Event{e}
	p.RecordBatch(batch[:])
}

// RecordBatch publishes a batch of events into the ring: the steady-state
// hot path of the batched ingest subsystem. Malformed events are dropped
// and counted exactly as Collector.Record would (the batched path is
// bit-for-bit equivalent to per-event recording); the event counter is
// bumped once per batch. The batch slice is not retained.
func (p *Producer) RecordBatch(events []trace.Event) {
	var written, malformed, lost uint64
	ring, mask := p.ring, p.mask
	size := uint64(len(ring))
	tail := p.tail.Load()
	i := 0
	for i < len(events) {
		free := size - (tail - p.head.Load())
		if free == 0 {
			if p.drop {
				// Count the remaining well-formed events as ring drops
				// (malformed ones were never going to be recorded).
				for ; i < len(events); i++ {
					if p.c.malformed(events[i]) {
						malformed++
					} else {
						lost++
					}
				}
				break
			}
			p.stalls.Add(1)
			for size-(tail-p.head.Load()) == 0 {
				runtime.Gosched()
			}
			continue
		}
		for free > 0 && i < len(events) {
			e := events[i]
			i++
			if p.c.malformed(e) {
				malformed++
				continue
			}
			ring[tail&mask] = e
			tail++
			free--
			written++
		}
		p.tail.Store(tail)
	}
	if written > 0 {
		p.c.events.Add(written)
	}
	if malformed > 0 {
		p.c.dropped.Add(malformed)
	}
	if lost > 0 {
		p.dropped.Add(lost)
	}
}

// Dropped returns the number of events discarded because the ring was
// full (DropOnFull mode).
func (p *Producer) Dropped() uint64 { return p.dropped.Load() }

// Stalls returns the number of backpressure wait episodes (blocking
// mode).
func (p *Producer) Stalls() uint64 { return p.stalls.Load() }

// Pending returns the number of events currently buffered in the ring.
func (p *Producer) Pending() int { return int(p.tail.Load() - p.head.Load()) }

// Close marks the producer finished. The producing goroutine must not
// publish after Close; the collector drains whatever is still in the ring
// at the next fold and then unregisters the handle.
func (p *Producer) Close() { p.closed.Store(true) }

// drain consumes every event currently in the ring into the fold state.
// It runs under Collector.foldMu (single consumer). Ring spans are copied
// into a pooled slab and the consumer cursor advanced *before* folding,
// so the producer regains the space while the fold — the expensive part —
// is still running.
func (p *Producer) drain(st *foldState) int {
	head := p.head.Load()
	tail := p.tail.Load()
	if head == tail {
		return 0
	}
	total := int(tail - head)
	sp := slabPool.Get().(*[]trace.Event)
	slab := *sp
	for head != tail {
		n := tail - head
		if n > slabSize {
			n = slabSize
		}
		idx := head & p.mask
		if wrap := uint64(len(p.ring)) - idx; n > wrap {
			n = wrap
		}
		slab = append(slab[:0], p.ring[idx:idx+n]...)
		head += n
		p.head.Store(head)
		for _, e := range slab {
			st.fold(e)
		}
	}
	*sp = slab[:0]
	slabPool.Put(sp)
	return total
}
