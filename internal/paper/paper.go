// Package paper embeds the published measurements and results of the case
// study in Calzarossa, Massari, Tessera, "Load Imbalance in Parallel
// Programs" (2003): a message-passing computational fluid dynamics code
// executed on P = 16 processors of an IBM SP2, instrumented over N = 7 main
// loops and K = 4 activities.
//
// Tables 1 and 2 are inputs (the published marginals of the never-published
// t_ijp cube); Tables 3 and 4 and the Section 4 findings are expected
// outputs that the analysis pipeline must regenerate. The reproduction
// tests in internal/core and the workload reconstruction in
// internal/workload are both driven by this package.
package paper

// Dimensions of the case study.
const (
	// NumLoops is N, the number of instrumented code regions (the main
	// loops of the CFD program).
	NumLoops = 7
	// NumActivities is K: computation, point-to-point communication,
	// collective communication, synchronization.
	NumActivities = 4
	// NumProcs is P, the number of allocated processors.
	NumProcs = 16
)

// Activity indices into the K dimension.
const (
	Computation = iota
	PointToPoint
	Collective
	Synchronization
)

// ActivityNames lists the four measured activities in table order.
var ActivityNames = [NumActivities]string{
	"computation",
	"point-to-point",
	"collective",
	"synchronization",
}

// LoopNames lists the seven instrumented loops in table order.
var LoopNames = [NumLoops]string{
	"loop 1", "loop 2", "loop 3", "loop 4", "loop 5", "loop 6", "loop 7",
}

// Absent marks a (loop, activity) pair in which the activity is not
// performed; the published tables print "-" for these cells.
const Absent = -1.0

// Table1 holds the published breakdown of each loop's wall clock time (in
// seconds) into the four activities. Cells equal to Absent mark activities
// the loop does not perform.
var Table1 = [NumLoops][NumActivities]float64{
	{12.24, Absent, 6.75, 0.061},
	{7.90, Absent, 6.32, Absent},
	{5.22, 5.68, Absent, Absent},
	{8.03, 2.51, Absent, Absent},
	{7.53, 0.07, 1.43, 0.011},
	{0.36, 0.33, Absent, 0.002},
	{0.28, Absent, 0.03, Absent},
}

// Table1Overall holds the published overall wall clock time of each loop,
// in seconds. Each value equals the sum of the loop's row of Table1 (the
// published rounding is exact).
var Table1Overall = [NumLoops]float64{
	19.051, 14.22, 10.90, 10.54, 9.041, 0.692, 0.31,
}

// ProgramTime is the wall clock time T of the whole program, in seconds.
// It is not printed in the paper but is implied by every scaled index in
// Tables 3 and 4: SID = ID * (time fraction of T). A least-squares fit of
// the eleven published SID values yields T = 69.93 s, consistent with the
// paper's statement that loop 1 accounts for "about 27%" of the program
// (19.051/69.93 = 27.2%) while the seven loops together account for 64.754
// s. The remaining ~5.2 s is uninstrumented program time.
const ProgramTime = 69.93

// Table2 holds the published indices of dispersion ID_ij: the Euclidean
// distance between the standardized times spent by the processors in
// activity j of loop i and their average. Absent cells mirror Table1.
var Table2 = [NumLoops][NumActivities]float64{
	{0.03674, Absent, 0.06793, 0.12870},
	{0.01095, Absent, 0.00318, Absent},
	{0.00672, 0.02833, Absent, Absent},
	{0.01615, 0.10742, Absent, Absent},
	{0.00933, 0.08872, 0.04907, 0.30571},
	{0.05017, 0.23200, Absent, 0.16163},
	{0.00719, Absent, 0.01138, Absent},
}

// Table3 holds the published activity-view summary: for each activity, the
// weighted-average index of dispersion ID_A and its scaled counterpart
// SID_A.
var Table3 = [NumActivities]struct{ ID, SID float64 }{
	{0.01904, 0.01132},
	{0.05973, 0.00734},
	{0.03781, 0.00786},
	{0.15559, 0.00016},
}

// Table4 holds the published code-region-view summary: for each loop, the
// weighted-average index of dispersion ID_C and its scaled counterpart
// SID_C.
var Table4 = [NumLoops]struct{ ID, SID float64 }{
	{0.04809, 0.01311},
	{0.00750, 0.00152},
	{0.01798, 0.00280},
	{0.03790, 0.00571},
	{0.01655, 0.00214},
	{0.13734, 0.00135},
	{0.00760, 0.00003},
}

// Section 4 qualitative findings that the reproduction must confirm.
const (
	// HeaviestLoop is the loop with the maximum wall clock time (1-based
	// as in the paper: loop 1).
	HeaviestLoop = 1
	// HeaviestLoopShare is the approximate fraction of the program wall
	// clock time accounted by the heaviest loop ("about 27%").
	HeaviestLoopShare = 0.27
	// DominantActivity is computation, the activity with the maximum
	// total wall clock time.
	DominantActivity = Computation
	// LongestPointToPointLoop spends the longest time in point-to-point
	// communications (loop 3).
	LongestPointToPointLoop = 3
	// MostImbalancedActivity is synchronization (largest ID_A).
	MostImbalancedActivity = Synchronization
	// MostImbalancedLoop is loop 6 (largest ID_C).
	MostImbalancedLoop = 6
	// BestTuningCandidateLoop is loop 1: large ID_C and the largest
	// scaled index SID_C.
	BestTuningCandidateLoop = 1
	// SynchronizationShare is the fraction of program wall clock time
	// accounted by synchronization ("only 0.1%").
	SynchronizationShare = 0.001
)

// ClusterHeavy and ClusterLight are the k-means partition of the loops
// reported in Section 4 (1-based loop numbers): the two heaviest loops form
// one group, the rest the other.
var (
	ClusterHeavy = []int{1, 2}
	ClusterLight = []int{3, 4, 5, 6, 7}
)

// Figure observations quoted in the text (counts of processors whose time
// falls in a banding interval of the loop's range).
const (
	// Figure1Loop4Upper: on loop 4, the computation times of 5 of the 16
	// processors lie in the upper 15% interval.
	Figure1Loop4Upper = 5
	// Figure1Loop6Lower: on loop 6, the computation times of 11 of the
	// 16 processors lie in the lower 15% interval.
	Figure1Loop6Lower = 11
	// BandFraction is the width of the banding intervals relative to the
	// range of the loop's times (the "lower and upper 15% intervals").
	BandFraction = 0.15
)

// Processor-view findings. The published data do not determine the
// processor-view indices uniquely, so the reproduction checks these
// qualitative facts rather than exact values.
const (
	// MostFrequentlyImbalancedProc is processor 1: it has the largest
	// index of dispersion on two loops (3 and 7).
	MostFrequentlyImbalancedProc = 1
	// LongestImbalancedProc is processor 2: most imbalanced on loop 1
	// only, with index 0.25754 and wall clock time 15.93 s.
	LongestImbalancedProc = 2
	// LongestImbalancedProcID is the published dispersion index of
	// processor 2 on loop 1.
	LongestImbalancedProcID = 0.25754
	// LongestImbalancedProcTime is processor 2's wall clock time on
	// loop 1, in seconds.
	LongestImbalancedProcTime = 15.93
)

// SumOfLoops returns the total wall clock time of the seven instrumented
// loops (64.754 s).
func SumOfLoops() float64 {
	s := 0.0
	for _, t := range Table1Overall {
		s += t
	}
	return s
}

// CellTime returns the Table1 entry for (loop, activity) using 0-based
// indices, and whether the activity is performed in that loop.
func CellTime(i, j int) (float64, bool) {
	t := Table1[i][j]
	if t == Absent {
		return 0, false
	}
	return t, true
}

// Dispersion returns the Table2 entry for (loop, activity) using 0-based
// indices, and whether the activity is performed in that loop.
func Dispersion(i, j int) (float64, bool) {
	d := Table2[i][j]
	if d == Absent {
		return 0, false
	}
	return d, true
}
