package paper

import (
	"math"
	"testing"
)

// TestTable1RowsSum verifies the published per-loop overall times equal the
// sum of their activity breakdowns.
func TestTable1RowsSum(t *testing.T) {
	for i := range Table1 {
		sum := 0.0
		for j := range Table1[i] {
			if v, ok := CellTime(i, j); ok {
				sum += v
			}
		}
		if math.Abs(sum-Table1Overall[i]) > 1e-9 {
			t.Errorf("loop %d: breakdown sums to %g, published overall %g", i+1, sum, Table1Overall[i])
		}
	}
}

func TestSumOfLoops(t *testing.T) {
	if got := SumOfLoops(); math.Abs(got-64.754) > 1e-9 {
		t.Errorf("SumOfLoops = %g, want 64.754", got)
	}
	if SumOfLoops() >= ProgramTime {
		t.Error("instrumented loops should not exceed the program time")
	}
}

func TestAbsencePatternsAgree(t *testing.T) {
	// Table 2 has an index exactly where Table 1 has a time.
	for i := range Table1 {
		for j := range Table1[i] {
			_, hasTime := CellTime(i, j)
			_, hasID := Dispersion(i, j)
			if hasTime != hasID {
				t.Errorf("loop %d activity %d: time present=%v but index present=%v", i+1, j, hasTime, hasID)
			}
		}
	}
}

// TestProgramTimeConsistent cross-checks the fitted program time against
// every published scaled index: SID = ID * share must reproduce the
// published SID to the published precision.
func TestProgramTimeConsistent(t *testing.T) {
	// Activity view: SID_A_j = (T_j / T) * ID_A_j.
	for j := range Table3 {
		tj := 0.0
		for i := range Table1 {
			if v, ok := CellTime(i, j); ok {
				tj += v
			}
		}
		want := Table3[j].ID * tj / ProgramTime
		if math.Abs(want-Table3[j].SID) > 2e-5 {
			t.Errorf("activity %s: ID*share = %.5f, published SID %.5f", ActivityNames[j], want, Table3[j].SID)
		}
	}
	// Region view: SID_C_i = (t_i / T) * ID_C_i.
	for i := range Table4 {
		want := Table4[i].ID * Table1Overall[i] / ProgramTime
		if math.Abs(want-Table4[i].SID) > 2e-5 {
			t.Errorf("loop %d: ID*share = %.5f, published SID %.5f", i+1, want, Table4[i].SID)
		}
	}
}

// TestPublishedWeightedAverages recomputes Tables 3 and 4 IDs from Tables 1
// and 2. The paper computed them from unrounded inputs, so agreement is to
// ~5e-4.
func TestPublishedWeightedAverages(t *testing.T) {
	const tol = 5e-4
	for j := range Table3 {
		num, den := 0.0, 0.0
		for i := range Table1 {
			tij, ok := CellTime(i, j)
			if !ok {
				continue
			}
			id, _ := Dispersion(i, j)
			num += tij * id
			den += tij
		}
		got := num / den
		if math.Abs(got-Table3[j].ID) > tol {
			t.Errorf("ID_A[%s] = %.5f, published %.5f", ActivityNames[j], got, Table3[j].ID)
		}
	}
	for i := range Table4 {
		num, den := 0.0, 0.0
		for j := range Table1[i] {
			tij, ok := CellTime(i, j)
			if !ok {
				continue
			}
			id, _ := Dispersion(i, j)
			num += tij * id
			den += tij
		}
		got := num / den
		if math.Abs(got-Table4[i].ID) > tol {
			t.Errorf("ID_C[loop %d] = %.5f, published %.5f", i+1, got, Table4[i].ID)
		}
	}
}

func TestFindingsAreSelfConsistent(t *testing.T) {
	// Heaviest loop share ~27%.
	share := Table1Overall[HeaviestLoop-1] / ProgramTime
	if math.Abs(share-HeaviestLoopShare) > 0.01 {
		t.Errorf("heaviest loop share = %.3f, paper says about %.2f", share, HeaviestLoopShare)
	}
	// Synchronization accounts for ~0.1% of T.
	sync := 0.0
	for i := range Table1 {
		if v, ok := CellTime(i, Synchronization); ok {
			sync += v
		}
	}
	if math.Abs(sync/ProgramTime-SynchronizationShare) > 2e-4 {
		t.Errorf("sync share = %.4f, paper says %.3f", sync/ProgramTime, SynchronizationShare)
	}
	// Most imbalanced activity/loop match the published tables.
	argmaxA, bestA := -1, -1.0
	for j := range Table3 {
		if Table3[j].ID > bestA {
			argmaxA, bestA = j, Table3[j].ID
		}
	}
	if argmaxA != MostImbalancedActivity {
		t.Errorf("most imbalanced activity = %d, want %d", argmaxA, MostImbalancedActivity)
	}
	argmaxC, bestC := -1, -1.0
	for i := range Table4 {
		if Table4[i].ID > bestC {
			argmaxC, bestC = i+1, Table4[i].ID
		}
	}
	if argmaxC != MostImbalancedLoop {
		t.Errorf("most imbalanced loop = %d, want %d", argmaxC, MostImbalancedLoop)
	}
	// Best tuning candidate has the largest SID_C.
	argmaxS, bestS := -1, -1.0
	for i := range Table4 {
		if Table4[i].SID > bestS {
			argmaxS, bestS = i+1, Table4[i].SID
		}
	}
	if argmaxS != BestTuningCandidateLoop {
		t.Errorf("largest SID_C loop = %d, want %d", argmaxS, BestTuningCandidateLoop)
	}
}

func TestClusterPartitionCoversLoops(t *testing.T) {
	seen := make(map[int]bool)
	for _, l := range append(append([]int{}, ClusterHeavy...), ClusterLight...) {
		if l < 1 || l > NumLoops || seen[l] {
			t.Fatalf("bad or duplicate loop %d in cluster partition", l)
		}
		seen[l] = true
	}
	if len(seen) != NumLoops {
		t.Errorf("partition covers %d of %d loops", len(seen), NumLoops)
	}
}
