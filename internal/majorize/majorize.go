// Package majorize implements the majorization partial order on data sets
// (Marshall & Olkin, "Inequalities: Theory of Majorization and Its
// Applications"), which the load-imbalance methodology uses as the
// theoretical framework for comparing the spread of processor time vectors.
//
// A vector a majorizes b (written a ≻ b) when, after sorting both in
// descending order, every prefix sum of a is at least the corresponding
// prefix sum of b and the total sums are equal. Intuitively a is "more
// spread out" than b: a concentrates more of the total on its largest
// elements. Indices of dispersion used by the methodology are
// Schur-convex: they respect the majorization order.
package majorize

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDimension is returned when two vectors being compared have different
// lengths.
var ErrDimension = errors.New("majorize: vectors have different lengths")

// ErrSumMismatch is returned when two vectors being compared have different
// totals; majorization is defined only for vectors of equal sum.
var ErrSumMismatch = errors.New("majorize: vectors have different sums")

// defaultTol is the relative tolerance used when comparing sums and prefix
// sums of floating-point vectors.
const defaultTol = 1e-9

// descending returns a copy of xs sorted in descending order.
func descending(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// sumTolerance returns an absolute tolerance scaled to the magnitude of the
// data.
func sumTolerance(a, b []float64) float64 {
	mag := 1.0
	for _, x := range a {
		mag += math.Abs(x)
	}
	for _, x := range b {
		mag += math.Abs(x)
	}
	return defaultTol * mag
}

// Majorizes reports whether a ≻ b: the vectors have equal length and sum
// (within a relative tolerance) and every descending prefix sum of a is at
// least that of b. Every vector majorizes itself.
func Majorizes(a, b []float64) (bool, error) {
	if len(a) != len(b) {
		return false, fmt.Errorf("%w: %d vs %d", ErrDimension, len(a), len(b))
	}
	if len(a) == 0 {
		return true, nil
	}
	tol := sumTolerance(a, b)
	sa, sb := 0.0, 0.0
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	if math.Abs(sa-sb) > tol {
		return false, fmt.Errorf("%w: %g vs %g", ErrSumMismatch, sa, sb)
	}
	da, db := descending(a), descending(b)
	pa, pb := 0.0, 0.0
	for i := range da[:len(da)-1] {
		pa += da[i]
		pb += db[i]
		if pa < pb-tol {
			return false, nil
		}
	}
	return true, nil
}

// Relation is the outcome of comparing two vectors under the majorization
// partial order.
type Relation int

// The possible outcomes of Compare.
const (
	// Incomparable means neither vector majorizes the other.
	Incomparable Relation = iota
	// Equal means the vectors majorize each other (they are equal up to
	// permutation).
	Equal
	// FirstMajorizes means a ≻ b strictly.
	FirstMajorizes
	// SecondMajorizes means b ≻ a strictly.
	SecondMajorizes
)

// String returns a human-readable name for the relation.
func (r Relation) String() string {
	switch r {
	case Incomparable:
		return "incomparable"
	case Equal:
		return "equal"
	case FirstMajorizes:
		return "first majorizes second"
	case SecondMajorizes:
		return "second majorizes first"
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Compare classifies the pair (a, b) under the majorization partial order.
// It returns an error when the vectors have different lengths or sums.
func Compare(a, b []float64) (Relation, error) {
	ab, err := Majorizes(a, b)
	if err != nil {
		return Incomparable, err
	}
	ba, err := Majorizes(b, a)
	if err != nil {
		return Incomparable, err
	}
	switch {
	case ab && ba:
		return Equal, nil
	case ab:
		return FirstMajorizes, nil
	case ba:
		return SecondMajorizes, nil
	}
	return Incomparable, nil
}

// Balanced returns the perfectly balanced vector of length n summing to
// total: every component equals total/n. The balanced vector is majorized
// by every vector of the same length and sum — it is the bottom of the
// order and corresponds to ideal load balance.
func Balanced(n int, total float64) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	v := total / float64(n)
	for i := range out {
		out[i] = v
	}
	return out
}

// OneHot returns the maximally imbalanced vector of length n summing to
// total: all mass on index 0. It majorizes every nonnegative vector of the
// same length and sum — the top of the order.
func OneHot(n int, total float64) []float64 {
	out := make([]float64, n)
	if n > 0 {
		out[0] = total
	}
	return out
}

// Lorenz returns the points of the Lorenz curve of a nonnegative vector:
// position k (1-based) holds the fraction of the total accounted for by the
// k smallest elements. The first point is 0. A vector a majorizes b exactly
// when a's Lorenz curve lies pointwise below b's.
func Lorenz(xs []float64) ([]float64, error) {
	for i, x := range xs {
		if x < 0 {
			return nil, fmt.Errorf("majorize: negative element %g at %d", x, i)
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	total := 0.0
	for _, x := range sorted {
		total += x
	}
	out := make([]float64, len(xs)+1)
	if total == 0 {
		// Degenerate all-zero vector: the curve is the diagonal.
		for i := range out {
			out[i] = float64(i) / float64(max(len(xs), 1))
		}
		return out, nil
	}
	run := 0.0
	for i, x := range sorted {
		run += x
		out[i+1] = run / total
	}
	return out, nil
}

// TTransform applies a Robin Hood operation: it moves fraction lambda in
// [0, 1] of the difference between elements i and j from the larger to the
// smaller, returning a new vector. T-transforms generate the majorization
// order: b is majorized by a exactly when b can be obtained from a by a
// finite sequence of T-transforms. Applying one never increases any
// Schur-convex index.
func TTransform(xs []float64, i, j int, lambda float64) ([]float64, error) {
	if i < 0 || i >= len(xs) || j < 0 || j >= len(xs) {
		return nil, fmt.Errorf("majorize: indices %d, %d out of range [0, %d)", i, j, len(xs))
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("majorize: lambda %g out of range [0, 1]", lambda)
	}
	out := append([]float64(nil), xs...)
	if i == j {
		return out, nil
	}
	// Blend both elements toward each other; lambda=0 is the identity,
	// lambda=1 averages them completely.
	l := lambda / 2
	out[i] = (1-l)*xs[i] + l*xs[j]
	out[j] = l*xs[i] + (1-l)*xs[j]
	return out, nil
}

// SchurConvexOn reports whether f behaves as a Schur-convex function on the
// ordered pair: if a ≻ b then f(a) >= f(b) must hold (within tol). When the
// pair is incomparable or not ordered as a ≻ b the check passes vacuously.
// Property tests use this to validate indices of dispersion.
func SchurConvexOn(f func([]float64) float64, a, b []float64, tol float64) (bool, error) {
	ok, err := Majorizes(a, b)
	if err != nil || !ok {
		return true, err
	}
	return f(a) >= f(b)-tol, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
