package majorize

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loadimb/internal/stats"
)

func TestMajorizesBasics(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		want bool
	}{
		{"self", []float64{3, 1}, []float64{3, 1}, true},
		{"permutation", []float64{1, 3}, []float64{3, 1}, true},
		{"onehot over balanced", []float64{4, 0, 0, 0}, []float64{1, 1, 1, 1}, true},
		{"balanced under onehot", []float64{1, 1, 1, 1}, []float64{4, 0, 0, 0}, false},
		{"classic", []float64{3, 1, 0}, []float64{2, 1, 1}, true},
		{"empty", nil, nil, true},
	}
	for _, c := range cases {
		got, err := Majorizes(c.a, c.b)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: Majorizes = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMajorizesErrors(t *testing.T) {
	if _, err := Majorizes([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("dimension err = %v", err)
	}
	if _, err := Majorizes([]float64{1, 1}, []float64{3, 1}); !errors.Is(err, ErrSumMismatch) {
		t.Errorf("sum err = %v", err)
	}
}

func TestCompare(t *testing.T) {
	r, err := Compare([]float64{2, 1, 1}, []float64{3, 1, 0})
	if err != nil || r != SecondMajorizes {
		t.Errorf("Compare = %v, %v; want SecondMajorizes", r, err)
	}
	r, err = Compare([]float64{3, 1, 0}, []float64{2, 1, 1})
	if err != nil || r != FirstMajorizes {
		t.Errorf("Compare = %v, %v; want FirstMajorizes", r, err)
	}
	r, err = Compare([]float64{1, 3}, []float64{3, 1})
	if err != nil || r != Equal {
		t.Errorf("Compare = %v, %v; want Equal", r, err)
	}
	// (3,3,0) vs (4,1,1): prefix sums 3,6,6 vs 4,5,6 -> incomparable.
	r, err = Compare([]float64{3, 3, 0}, []float64{4, 1, 1})
	if err != nil || r != Incomparable {
		t.Errorf("Compare = %v, %v; want Incomparable", r, err)
	}
	if _, err := Compare([]float64{1}, []float64{1, 0}); err == nil {
		t.Error("Compare with mismatched dims should fail")
	}
}

func TestRelationString(t *testing.T) {
	for _, r := range []Relation{Incomparable, Equal, FirstMajorizes, SecondMajorizes, Relation(99)} {
		if r.String() == "" {
			t.Errorf("empty String for %d", int(r))
		}
	}
}

func TestBalancedAndOneHotAreExtremes(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		total := 0.0
		for i, x := range raw {
			xs[i] = math.Abs(math.Mod(x, 1000))
			total += xs[i]
		}
		if total == 0 {
			return true
		}
		top := OneHot(len(xs), total)
		bot := Balanced(len(xs), total)
		overBot, err1 := Majorizes(xs, bot)
		underTop, err2 := Majorizes(top, xs)
		return err1 == nil && err2 == nil && overBot && underTop
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBalancedZeroLength(t *testing.T) {
	if got := Balanced(0, 5); len(got) != 0 {
		t.Errorf("Balanced(0) = %v", got)
	}
	if got := OneHot(0, 5); len(got) != 0 {
		t.Errorf("OneHot(0) = %v", got)
	}
}

func TestLorenz(t *testing.T) {
	pts, err := Lorenz([]float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 1}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-12 {
			t.Errorf("Lorenz[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
	if _, err := Lorenz([]float64{-1}); err == nil {
		t.Error("negative input should fail")
	}
	diag, err := Lorenz([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if diag[1] != 0.5 || diag[2] != 1 {
		t.Errorf("all-zero Lorenz = %v", diag)
	}
}

func TestLorenzCharacterizesMajorization(t *testing.T) {
	// a ≻ b iff Lorenz(a) <= Lorenz(b) pointwise.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		// Rescale b to the same sum as a.
		sa, sb := stats.Sum(a), stats.Sum(b)
		for i := range b {
			b[i] *= sa / sb
		}
		maj, err := Majorizes(a, b)
		if err != nil {
			t.Fatal(err)
		}
		la, _ := Lorenz(a)
		lb, _ := Lorenz(b)
		below := true
		for i := range la {
			if la[i] > lb[i]+1e-9 {
				below = false
				break
			}
		}
		if maj != below {
			t.Fatalf("trial %d: Majorizes=%v but Lorenz-below=%v\na=%v\nb=%v", trial, maj, below, a, b)
		}
	}
}

func TestTTransform(t *testing.T) {
	out, err := TTransform([]float64{4, 0}, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 2 {
		t.Errorf("full transform = %v, want [2 2]", out)
	}
	out, err = TTransform([]float64{4, 0}, 0, 1, 0)
	if err != nil || out[0] != 4 || out[1] != 0 {
		t.Errorf("identity transform = %v, %v", out, err)
	}
	out, err = TTransform([]float64{4, 0}, 1, 1, 0.5)
	if err != nil || out[0] != 4 {
		t.Errorf("i==j transform = %v, %v", out, err)
	}
	if _, err := TTransform([]float64{1}, 0, 5, 0.5); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := TTransform([]float64{1, 2}, 0, 1, 2); err == nil {
		t.Error("lambda > 1 should fail")
	}
}

func TestTTransformIsMajorized(t *testing.T) {
	// The original vector majorizes any T-transform of itself.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		i, j := rng.Intn(n), rng.Intn(n)
		out, err := TTransform(xs, i, j, rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		maj, err := Majorizes(xs, out)
		if err != nil || !maj {
			t.Fatalf("trial %d: original should majorize transform: %v\nxs=%v\nout=%v", trial, err, xs, out)
		}
	}
}

// TestIndicesAreSchurConvex validates that the dispersion indices used by
// the methodology respect the majorization order on standardized vectors:
// more majorized (more spread out) means a larger index.
func TestIndicesAreSchurConvex(t *testing.T) {
	schurConvex := []stats.Index{stats.Euclidean, stats.Variance, stats.StdDev, stats.MAD, stats.Max, stats.Gini}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
		}
		std, err := stats.Standardize(a)
		if err != nil {
			t.Fatal(err)
		}
		// b is a T-transform of a, hence majorized by a.
		b, err := TTransform(std, rng.Intn(n), rng.Intn(n), rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range schurConvex {
			ok, err := SchurConvexOn(idx.Of, std, b, 1e-9)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: %s violates Schur convexity\na=%v\nb=%v", trial, idx.Name(), std, b)
			}
		}
	}
}

func TestSchurConvexOnVacuous(t *testing.T) {
	// Incomparable or reversed pairs pass vacuously.
	ok, err := SchurConvexOn(stats.Max.Of, []float64{1, 1, 1}, []float64{3, 0, 0}, 0)
	if err != nil || !ok {
		t.Errorf("vacuous check = %v, %v", ok, err)
	}
}
