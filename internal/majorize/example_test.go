package majorize_test

import (
	"fmt"
	"log"

	"loadimb/internal/majorize"
)

// Example compares two load distributions under the majorization order:
// the more concentrated one majorizes the more even one.
func Example() {
	concentrated := []float64{3, 1, 0}
	even := []float64{2, 1, 1}
	rel, err := majorize.Compare(concentrated, even)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rel)
	// Output:
	// first majorizes second
}

// ExampleLorenz prints the Lorenz curve of a skewed distribution: the
// poorest half of the processors hold only a quarter of the work.
func ExampleLorenz() {
	pts, err := majorize.Lorenz([]float64{1, 1, 3, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f\n", pts)
	// Output:
	// [0.00 0.12 0.25 0.62 1.00]
}

// ExampleDoublyStochastic_Apply demonstrates the Hardy-Littlewood-Pólya
// connection: doubly stochastic averaging always reduces spread.
func ExampleDoublyStochastic_Apply() {
	d, err := majorize.Blend(4, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	smoothed, err := d.Apply([]float64{8, 0, 0, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f\n", smoothed)
	// Output:
	// [5 1 1 1]
}
