package majorize

import (
	"math"
	"math/rand"
	"testing"

	"loadimb/internal/stats"
)

func TestNewDoublyStochasticValidation(t *testing.T) {
	if _, err := NewDoublyStochastic(nil, 0); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := NewDoublyStochastic([][]float64{{1, 0}, {0}}, 0); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := NewDoublyStochastic([][]float64{{2, -1}, {-1, 2}}, 0); err == nil {
		t.Error("negative entries should fail")
	}
	if _, err := NewDoublyStochastic([][]float64{{0.5, 0.4}, {0.5, 0.6}}, 0); err == nil {
		t.Error("bad row sums should fail")
	}
	if _, err := NewDoublyStochastic([][]float64{{0.9, 0.1}, {0.2, 0.8}}, 0); err == nil {
		t.Error("bad column sums should fail")
	}
	good, err := NewDoublyStochastic([][]float64{{0.7, 0.3}, {0.3, 0.7}}, 0)
	if err != nil || len(good) != 2 {
		t.Fatalf("valid matrix rejected: %v", err)
	}
}

func TestIdentityPreserves(t *testing.T) {
	xs := []float64{3, 1, 4}
	out, err := Identity(3).Apply(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if out[i] != xs[i] {
			t.Errorf("identity changed element %d", i)
		}
	}
}

func TestUniformMixBalances(t *testing.T) {
	xs := []float64{6, 0, 0}
	out, err := UniformMix(3).Apply(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-2) > 1e-12 {
			t.Errorf("element %d = %g, want 2", i, v)
		}
	}
}

func TestApplyDimensionMismatch(t *testing.T) {
	if _, err := Identity(2).Apply([]float64{1, 2, 3}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestBlend(t *testing.T) {
	if _, err := Blend(3, -0.1); err == nil {
		t.Error("negative alpha should fail")
	}
	if _, err := Blend(3, 1.1); err == nil {
		t.Error("alpha > 1 should fail")
	}
	for _, alpha := range []float64{0, 0.3, 1} {
		d, err := Blend(4, alpha)
		if err != nil {
			t.Fatal(err)
		}
		// Blend must itself be doubly stochastic.
		if _, err := NewDoublyStochastic(d, 0); err != nil {
			t.Errorf("Blend(%g) not doubly stochastic: %v", alpha, err)
		}
	}
}

// TestBlendDampsDispersionMonotonically: larger alpha means less spread.
func TestBlendDampsDispersionMonotonically(t *testing.T) {
	xs := []float64{10, 1, 1, 1}
	prev := math.Inf(1)
	for alpha := 0.0; alpha <= 1.0001; alpha += 0.1 {
		d, err := Blend(4, math.Min(alpha, 1))
		if err != nil {
			t.Fatal(err)
		}
		out, err := d.Apply(xs)
		if err != nil {
			t.Fatal(err)
		}
		id := stats.Euclidean.Of(out)
		if id > prev+1e-12 {
			t.Fatalf("dispersion increased at alpha %g: %g > %g", alpha, id, prev)
		}
		prev = id
	}
	if prev > 1e-12 {
		t.Errorf("alpha=1 dispersion = %g, want 0", prev)
	}
}

// TestHardyLittlewoodPolya: Dx is always majorized by x for random doubly
// stochastic matrices (built as blends of permutations, per Birkhoff's
// theorem).
func TestHardyLittlewoodPolya(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		// Random convex combination of permutation matrices.
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		weight := 0.0
		for k := 0; k < 3; k++ {
			w := rng.Float64()
			perm := rng.Perm(n)
			for i, j := range perm {
				m[i][j] += w
			}
			weight += w
		}
		for i := range m {
			for j := range m[i] {
				m[i][j] /= weight
			}
		}
		d, err := NewDoublyStochastic(m, 1e-9)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		out, err := d.Apply(xs)
		if err != nil {
			t.Fatal(err)
		}
		maj, err := Majorizes(xs, out)
		if err != nil || !maj {
			t.Fatalf("trial %d: x should majorize Dx (err %v)\nx=%v\nDx=%v", trial, err, xs, out)
		}
	}
}
