package majorize

import (
	"fmt"
	"math"
)

// A DoublyStochastic matrix has nonnegative entries with every row and
// every column summing to one. The Hardy-Littlewood-Pólya theorem ties it
// to majorization: b is majorized by a exactly when b = Da for some
// doubly stochastic D — averaging with such a matrix can only make a
// vector less spread out.
type DoublyStochastic [][]float64

// NewDoublyStochastic validates a candidate matrix within tolerance tol
// (<= 0 means 1e-9).
func NewDoublyStochastic(m [][]float64, tol float64) (DoublyStochastic, error) {
	if tol <= 0 {
		tol = 1e-9
	}
	n := len(m)
	if n == 0 {
		return nil, fmt.Errorf("majorize: empty matrix")
	}
	colSums := make([]float64, n)
	for i, row := range m {
		if len(row) != n {
			return nil, fmt.Errorf("majorize: row %d has %d entries, want %d", i, len(row), n)
		}
		rowSum := 0.0
		for j, v := range row {
			if v < -tol {
				return nil, fmt.Errorf("majorize: negative entry %g at (%d, %d)", v, i, j)
			}
			rowSum += v
			colSums[j] += v
		}
		if math.Abs(rowSum-1) > tol {
			return nil, fmt.Errorf("majorize: row %d sums to %g", i, rowSum)
		}
	}
	for j, s := range colSums {
		if math.Abs(s-1) > tol {
			return nil, fmt.Errorf("majorize: column %d sums to %g", j, s)
		}
	}
	out := make(DoublyStochastic, n)
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out, nil
}

// Apply returns Dx. The result is always majorized by x.
func (d DoublyStochastic) Apply(xs []float64) ([]float64, error) {
	if len(xs) != len(d) {
		return nil, fmt.Errorf("%w: matrix %d, vector %d", ErrDimension, len(d), len(xs))
	}
	out := make([]float64, len(xs))
	for i, row := range d {
		for j, v := range row {
			out[i] += v * xs[j]
		}
	}
	return out, nil
}

// Identity returns the n x n identity, the doubly stochastic matrix that
// preserves spread exactly.
func Identity(n int) DoublyStochastic {
	out := make(DoublyStochastic, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	return out
}

// UniformMix returns the n x n matrix with every entry 1/n: applying it
// collapses any vector to the perfectly balanced one.
func UniformMix(n int) DoublyStochastic {
	out := make(DoublyStochastic, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = 1 / float64(n)
		}
	}
	return out
}

// Blend returns (1-alpha)*I + alpha*UniformMix: a one-parameter family of
// doubly stochastic matrices interpolating between "no rebalancing" and
// "perfect rebalancing". Workload models use it to damp imbalance by a
// known amount.
func Blend(n int, alpha float64) (DoublyStochastic, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("majorize: blend alpha %g out of [0, 1]", alpha)
	}
	out := make(DoublyStochastic, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = alpha / float64(n)
			if i == j {
				out[i][j] += 1 - alpha
			}
		}
	}
	return out, nil
}
