// Package search implements a Paradyn-style hierarchical bottleneck
// search (Miller et al., "The Paradyn Parallel Performance Measurement
// Tool"; Roth & Miller's Deep Start), the automated-diagnosis approach the
// paper positions its methodology against. The Performance Consultant
// refines hypotheses along the "why" axis (which activity is the
// bottleneck) and the "where" axis (which code region, which processor),
// flagging any hypothesis whose metric exceeds a predefined threshold.
//
// The searcher here consumes the same measurement cube as the
// methodology, so the two approaches are directly comparable: the
// benchmarks contrast what each flags on the paper's case study and how
// many hypotheses the threshold search must evaluate.
package search

import (
	"errors"
	"fmt"
	"sort"

	"loadimb/internal/trace"
)

// Level identifies how deep in the hierarchy a finding sits.
type Level int

// Hierarchy levels.
const (
	// ActivityLevel flags an activity of the whole program.
	ActivityLevel Level = iota
	// RegionLevel flags an activity within one code region.
	RegionLevel
	// ProcessorLevel flags one processor within a (region, activity).
	ProcessorLevel
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case ActivityLevel:
		return "activity"
	case RegionLevel:
		return "region"
	case ProcessorLevel:
		return "processor"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Config holds the search thresholds. The zero value uses Paradyn-like
// defaults: hypotheses accounting for at least 20% of their parent's time
// are refined, and processors at least 1.5x the cell mean are flagged.
type Config struct {
	// ShareThreshold is the minimum fraction of the parent's time for a
	// why/where hypothesis to be true (0 means 0.20).
	ShareThreshold float64
	// ExcessFactor is the minimum multiple of the cell's mean processor
	// time for a processor to be flagged (0 means 1.5).
	ExcessFactor float64
}

func (c *Config) normalize() error {
	if c.ShareThreshold == 0 {
		c.ShareThreshold = 0.20
	}
	if c.ExcessFactor == 0 {
		c.ExcessFactor = 1.5
	}
	if c.ShareThreshold < 0 || c.ShareThreshold > 1 {
		return fmt.Errorf("search: share threshold %g out of [0, 1]", c.ShareThreshold)
	}
	if c.ExcessFactor < 1 {
		return fmt.Errorf("search: excess factor %g must be >= 1", c.ExcessFactor)
	}
	return nil
}

// Finding is one true hypothesis.
type Finding struct {
	// Level is the refinement depth.
	Level Level
	// Activity is the activity index (always set).
	Activity int
	// Region is the region index; -1 at ActivityLevel.
	Region int
	// Proc is the processor; -1 above ProcessorLevel.
	Proc int
	// Value is the metric that crossed the threshold: a time share for
	// activity/region findings, a multiple of the mean for processors.
	Value float64
}

// Outcome is the result of a search.
type Outcome struct {
	// Findings lists every true hypothesis, most significant first
	// within each level.
	Findings []Finding
	// HypothesesTested counts metric evaluations — the search cost the
	// Performance Consultant tries to minimize by pruning.
	HypothesesTested int
}

// AtLevel returns the findings of one level.
func (o *Outcome) AtLevel(l Level) []Finding {
	var out []Finding
	for _, f := range o.Findings {
		if f.Level == l {
			out = append(out, f)
		}
	}
	return out
}

// Search runs the hierarchical refinement on a cube: flag heavy
// activities of the program, refine each into the regions where it is
// heavy, and refine each of those into overloaded processors. Refinement
// only descends through true hypotheses (the pruning that keeps the
// search cheap — and that makes it blind to problems below an
// under-threshold parent).
func Search(cube *trace.Cube, cfg Config) (*Outcome, error) {
	if cube == nil {
		return nil, errors.New("search: nil cube")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	out := &Outcome{}
	total := cube.ProgramTime()
	if total <= 0 {
		return nil, errors.New("search: zero program time")
	}
	// Why axis: which activities dominate the program.
	var flagged []Finding
	for j := 0; j < cube.NumActivities(); j++ {
		out.HypothesesTested++
		tj, err := cube.ActivityTime(j)
		if err != nil {
			return nil, err
		}
		if share := tj / total; share >= cfg.ShareThreshold {
			flagged = append(flagged, Finding{
				Level: ActivityLevel, Activity: j, Region: -1, Proc: -1, Value: share,
			})
		}
	}
	sortByValue(flagged)
	out.Findings = append(out.Findings, flagged...)
	// Where axis: regions within each flagged activity.
	var regionFindings []Finding
	for _, parent := range flagged {
		tj, err := cube.ActivityTime(parent.Activity)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cube.NumRegions(); i++ {
			out.HypothesesTested++
			tij, err := cube.CellTime(i, parent.Activity)
			if err != nil {
				return nil, err
			}
			if share := tij / tj; share >= cfg.ShareThreshold {
				regionFindings = append(regionFindings, Finding{
					Level: RegionLevel, Activity: parent.Activity, Region: i, Proc: -1, Value: share,
				})
			}
		}
	}
	sortByValue(regionFindings)
	out.Findings = append(out.Findings, regionFindings...)
	// Processor refinement within each flagged (region, activity).
	var procFindings []Finding
	for _, parent := range regionFindings {
		times, err := cube.ProcTimes(parent.Region, parent.Activity)
		if err != nil {
			return nil, err
		}
		mean := 0.0
		for _, t := range times {
			mean += t
		}
		mean /= float64(len(times))
		if mean == 0 {
			continue
		}
		for p, t := range times {
			out.HypothesesTested++
			if factor := t / mean; factor >= cfg.ExcessFactor {
				procFindings = append(procFindings, Finding{
					Level: ProcessorLevel, Activity: parent.Activity, Region: parent.Region, Proc: p, Value: factor,
				})
			}
		}
	}
	sortByValue(procFindings)
	out.Findings = append(out.Findings, procFindings...)
	return out, nil
}

func sortByValue(fs []Finding) {
	sort.SliceStable(fs, func(a, b int) bool { return fs[a].Value > fs[b].Value })
}

// ExhaustiveHypotheses returns how many hypotheses an unpruned search of
// the same cube would evaluate: K + K*N + K*N*P. The ratio against
// Outcome.HypothesesTested quantifies the pruning benefit.
func ExhaustiveHypotheses(cube *trace.Cube) int {
	k, n, p := cube.NumActivities(), cube.NumRegions(), cube.NumProcs()
	return k + k*n + k*n*p
}
