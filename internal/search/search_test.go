package search

import (
	"testing"

	"loadimb/internal/paper"
	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

func paperCube(t *testing.T) *trace.Cube {
	t.Helper()
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(nil, Config{}); err == nil {
		t.Error("nil cube should fail")
	}
	cube := paperCube(t)
	if _, err := Search(cube, Config{ShareThreshold: 2}); err == nil {
		t.Error("share threshold > 1 should fail")
	}
	if _, err := Search(cube, Config{ExcessFactor: 0.5}); err == nil {
		t.Error("excess factor < 1 should fail")
	}
	empty, err := trace.NewCube([]string{"r"}, []string{"a"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(empty, Config{}); err == nil {
		t.Error("zero program time should fail")
	}
}

func TestSearchOnPaperCube(t *testing.T) {
	out, err := Search(paperCube(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Why axis: only computation exceeds 20% of the program (59%);
	// collective is 21% — also flagged.
	acts := out.AtLevel(ActivityLevel)
	if len(acts) != 2 {
		t.Fatalf("activity findings = %+v", acts)
	}
	if acts[0].Activity != paper.Computation {
		t.Errorf("top activity = %d, want computation", acts[0].Activity)
	}
	if acts[1].Activity != paper.Collective {
		t.Errorf("second activity = %d, want collective", acts[1].Activity)
	}
	// Where axis: computation is heavy in loops 1 and 4 (29%, 19%)...
	regs := out.AtLevel(RegionLevel)
	if len(regs) == 0 {
		t.Fatal("no region findings")
	}
	// The top region finding is collective in loop 1 (6.75/14.53 = 46%).
	if regs[0].Region != 0 || regs[0].Activity != paper.Collective {
		t.Errorf("top region finding = %+v", regs[0])
	}
	// Every region finding descends from a flagged activity.
	flagged := map[int]bool{}
	for _, a := range acts {
		flagged[a.Activity] = true
	}
	for _, r := range regs {
		if !flagged[r.Activity] {
			t.Errorf("region finding %+v has unflagged parent", r)
		}
	}
	// Hypothesis counting: pruning must beat the exhaustive count.
	if out.HypothesesTested >= ExhaustiveHypotheses(paperCube(t)) {
		t.Errorf("tested %d hypotheses, exhaustive is %d", out.HypothesesTested, ExhaustiveHypotheses(paperCube(t)))
	}
}

// TestSearchBlindSpot documents the structural difference from the
// methodology: the threshold search never flags synchronization (0.1% of
// the program), so it cannot report that synchronization is the most
// imbalanced activity — the paper's fine-grain analysis can, and then
// discounts it by scaling. Both designs suppress the candidate, but the
// search does so without ever measuring its imbalance.
func TestSearchBlindSpot(t *testing.T) {
	out, err := Search(paperCube(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range out.Findings {
		if f.Activity == paper.Synchronization {
			t.Errorf("threshold search flagged synchronization: %+v", f)
		}
	}
}

func TestSearchProcessorLevel(t *testing.T) {
	// Build a cube with an obvious overloaded processor.
	cube, err := trace.NewCube([]string{"r"}, []string{"comp"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range []float64{1, 1, 1, 9} {
		if err := cube.Set(0, 0, p, v); err != nil {
			t.Fatal(err)
		}
	}
	out, err := Search(cube, Config{})
	if err != nil {
		t.Fatal(err)
	}
	procs := out.AtLevel(ProcessorLevel)
	if len(procs) != 1 || procs[0].Proc != 3 {
		t.Fatalf("processor findings = %+v", procs)
	}
	// 9 / mean 3 = 3x.
	if procs[0].Value != 3 {
		t.Errorf("excess factor = %g, want 3", procs[0].Value)
	}
}

func TestSearchThresholdSensitivity(t *testing.T) {
	cube := paperCube(t)
	strict, err := Search(cube, Config{ShareThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Search(cube, Config{ShareThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Findings) >= len(loose.Findings) {
		t.Errorf("strict threshold found %d >= loose %d", len(strict.Findings), len(loose.Findings))
	}
	if strict.HypothesesTested >= loose.HypothesesTested {
		t.Errorf("strict tested %d >= loose %d", strict.HypothesesTested, loose.HypothesesTested)
	}
}

func TestSearchBalancedCubeFindsNoProcessors(t *testing.T) {
	spec := workload.Uniform(3, 2, 8)
	cube, err := workload.Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Search(cube, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if procs := out.AtLevel(ProcessorLevel); len(procs) != 0 {
		t.Errorf("balanced cube flagged processors: %+v", procs)
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{ActivityLevel, RegionLevel, ProcessorLevel, Level(9)} {
		if l.String() == "" {
			t.Errorf("empty String for %d", int(l))
		}
	}
}

func TestExhaustiveHypotheses(t *testing.T) {
	cube := paperCube(t)
	// K + K*N + K*N*P = 4 + 28 + 448.
	if got := ExhaustiveHypotheses(cube); got != 480 {
		t.Errorf("exhaustive = %d, want 480", got)
	}
}
