// Package federate merges the live measurement cubes of many imbamon
// (internal/monitor) endpoints into one federated cube, so a cluster of
// instrumented jobs is analyzed as a single program — the way the paper
// treats its P=16 run, scaled out to many cooperating processes.
//
// A Federator periodically scrapes each endpoint's /cube.json with a
// per-request timeout. Failures are retried with exponential backoff plus
// jitter; after MaxFailures consecutive failures an endpoint is marked
// stale and its last cube is dropped from the aggregate instead of
// poisoning it — the remaining endpoints keep serving a correct
// cluster-wide view (graceful degradation), and the endpoint rejoins
// automatically on its next successful scrape.
//
// The Federator implements monitor.SnapshotSource, so the existing
// exposition handlers (monitor.MetricsHandler, CubeHandler,
// LorenzHandler) serve the federated cube unchanged; Handler wires them
// onto a mux together with a /healthz that lists per-endpoint scrape
// state.
package federate

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/temporal"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

// An Endpoint is one imbamon instance to scrape.
type Endpoint struct {
	// Name labels the endpoint; it namespaces the endpoint's code
	// regions in the federated cube ("name/region") and identifies it in
	// /healthz and the federation metrics. Names must be unique.
	Name string
	// URL is the base URL of the monitor handler set, e.g.
	// "http://node7:9190"; the federator scrapes URL + "/delta" (falling
	// back to URL + "/cube.json" for endpoints without the binary
	// protocol).
	URL string
	// Raw suppresses namespacing for this endpoint: its region names and
	// per-region window keys enter the federated view verbatim instead of
	// prefixed "name/". This is how federation tiers compose — a federator
	// scraping another federator sets Raw, because the lower tier already
	// namespaced every region by its leaf job, and re-prefixing would make
	// the tree's root view depend on its shape. Rank offsets still apply.
	Raw bool
}

// Options configures a Federator. Zero durations and counts fall back to
// the documented defaults.
type Options struct {
	// Endpoints is the scrape target set; at least one is required.
	Endpoints []Endpoint
	// Interval is the poll period after a successful scrape. Default 2s.
	Interval time.Duration
	// Timeout bounds each scrape request. Default 5s.
	Timeout time.Duration
	// MaxFailures is the number of consecutive scrape failures after
	// which an endpoint is considered stale and excluded from the
	// aggregate. Default 3.
	MaxFailures int
	// BackoffBase is the retry delay after the first failure; it doubles
	// per consecutive failure up to BackoffMax, with jitter drawn from
	// [delay/2, delay) so a restarted cluster's endpoints do not retry
	// in lockstep. Defaults: Interval/4 and 4*Interval.
	BackoffBase, BackoffMax time.Duration
	// WindowCap bounds the merged window series the same way the
	// collectors bound theirs: at most WindowCap ring windows at full
	// resolution plus a decimated coarse tail of at most WindowCap
	// windows. Endpoints usually arrive pre-bounded (their own caps), but
	// a merged ring can still outgrow any one endpoint's — endpoints
	// decimate at different times — and unbounded endpoints must not make
	// the federator unbounded. 0 means temporal.DefaultWindowCap;
	// negative disables the cap.
	WindowCap int
	// DisableDelta turns off the binary /delta scrape path: every scrape
	// uses the JSON documents (conditional on the ETag as before). The
	// default — delta first, JSON fallback for endpoints that answer 404
	// — moves only changed cells and windows on an up-to-date endpoint.
	DisableDelta bool
	// MaxBodyBytes bounds every scrape response body, compressed and
	// decompressed, so a hostile or broken endpoint cannot OOM the
	// federator. A response whose Content-Length or actual stream exceeds
	// the bound fails the scrape. 0 means DefaultMaxBodyBytes; negative
	// disables the bound.
	MaxBodyBytes int64
	// Client overrides the HTTP client (tests inject httptest clients);
	// the per-request Timeout is applied through the request context
	// either way.
	Client *http.Client
	// Logf, when set, receives scrape state transitions (endpoint went
	// stale, endpoint recovered).
	Logf func(format string, args ...any)
}

// endpointState is the mutable scrape state of one endpoint, guarded by
// Federator.mu.
type endpointState struct {
	Endpoint
	cube *trace.Cube // last successfully fetched cube, nil before
	// windows is the endpoint's last window series (/windows.json); nil
	// when the endpoint has windowing disabled or the fetch failed. It is
	// fetched best-effort alongside the cube: cube availability drives
	// endpoint health, window availability only the timeline view.
	windows *temporal.Series
	// etag is the snapshot entity tag the cube was fetched under
	// (monitor.Snapshot.ETag: the endpoint's boot nonce and fold
	// generation). The next scrape sends it as If-None-Match; an
	// unchanged endpoint answers 304 and the scrape costs a header
	// exchange instead of a full document transfer and re-merge. Empty
	// for endpoints that do not serve ETags.
	etag        string
	lastSuccess time.Time
	lastAttempt time.Time
	lastLatency time.Duration // duration of the most recent scrape attempt
	lastError   string
	consecutive int    // consecutive failures since the last success
	scrapes     uint64 // successful scrapes
	failures    uint64 // failed scrapes
	bytes       uint64 // response body bytes fetched (on the wire)
	// jsonOnly marks an endpoint that answered /delta with 404/405: the
	// scraper stops asking and uses the JSON documents. It resets when
	// the endpoint's boot nonce changes — a restart may have brought a
	// newer build that speaks the protocol.
	jsonOnly bool
	// usedDelta reports whether the most recent successful scrape went
	// over the binary delta path.
	usedDelta bool
}

// Federator scrapes a set of monitor endpoints and serves their merged
// cube. Create one with New; it is safe for concurrent use.
type Federator struct {
	interval    time.Duration
	timeout     time.Duration
	maxFailures int
	windowCap   int
	backoffBase time.Duration
	backoffMax  time.Duration
	client      *http.Client
	logf        func(string, ...any)
	noDelta     bool
	maxBody     int64
	// boot is this federator incarnation's nonce: a federator is itself a
	// snapshot publisher (another federator may scrape it), so its
	// snapshots carry a Boot like a collector's.
	boot uint64

	mu     sync.Mutex
	states []*endpointState
	// gen counts changes to the live-cube set: it advances on every
	// successful scrape and on every staleness transition, i.e. whenever a
	// merge could produce a different federated cube. snap/snapGen cache
	// the last merged snapshot so repeated scrapes between polls are O(1).
	gen     uint64
	snap    *monitor.Snapshot
	snapGen uint64
}

// New validates the options and builds a Federator. Endpoints without a
// name are named after their URL host; names must end up unique, since
// they namespace the federated cube's regions.
func New(opts Options) (*Federator, error) {
	if len(opts.Endpoints) == 0 {
		return nil, errors.New("federate: no endpoints to scrape")
	}
	f := &Federator{
		interval:    opts.Interval,
		timeout:     opts.Timeout,
		maxFailures: opts.MaxFailures,
		windowCap:   opts.WindowCap,
		backoffBase: opts.BackoffBase,
		backoffMax:  opts.BackoffMax,
		client:      opts.Client,
		logf:        opts.Logf,
		noDelta:     opts.DisableDelta,
		maxBody:     opts.MaxBodyBytes,
		boot:        monitor.BootNonce(),
	}
	if f.maxBody == 0 {
		f.maxBody = DefaultMaxBodyBytes
	}
	if f.maxBody < 0 {
		f.maxBody = math.MaxInt64
	}
	if f.windowCap == 0 {
		f.windowCap = temporal.DefaultWindowCap
	}
	if f.windowCap < 0 {
		f.windowCap = 0 // explicit opt-out: unbounded
	}
	if f.interval <= 0 {
		f.interval = 2 * time.Second
	}
	if f.timeout <= 0 {
		f.timeout = 5 * time.Second
	}
	if f.maxFailures <= 0 {
		f.maxFailures = 3
	}
	if f.backoffBase <= 0 {
		f.backoffBase = f.interval / 4
	}
	if f.backoffMax <= 0 {
		f.backoffMax = 4 * f.interval
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	seen := make(map[string]bool, len(opts.Endpoints))
	for i, ep := range opts.Endpoints {
		if ep.URL == "" {
			return nil, fmt.Errorf("federate: endpoint %d has no URL", i)
		}
		if ep.Name == "" {
			u, err := url.Parse(ep.URL)
			if err != nil || u.Host == "" {
				return nil, fmt.Errorf("federate: endpoint %d: cannot derive a name from URL %q", i, ep.URL)
			}
			ep.Name = u.Host
		}
		if seen[ep.Name] {
			return nil, fmt.Errorf("federate: duplicate endpoint name %q", ep.Name)
		}
		seen[ep.Name] = true
		f.states = append(f.states, &endpointState{Endpoint: ep})
	}
	return f, nil
}

// DefaultMaxBodyBytes is the default per-response body bound: far above
// any real cube or window series document, far below what it takes to
// hurt the federator.
const DefaultMaxBodyBytes = 64 << 20

// cubeURL is the scrape target of one endpoint.
func (s *endpointState) cubeURL() string {
	return strings.TrimSuffix(s.URL, "/") + "/cube.json"
}

// windowsURL is the endpoint's window-series document.
func (s *endpointState) windowsURL() string {
	return strings.TrimSuffix(s.URL, "/") + "/windows.json"
}

// deltaURL is the endpoint's binary snapshot-transfer endpoint.
func (s *endpointState) deltaURL() string {
	return strings.TrimSuffix(s.URL, "/") + "/delta"
}

// stale reports whether the endpoint has failed too many times in a row;
// callers hold Federator.mu.
func (s *endpointState) stale(maxFailures int) bool {
	return s.consecutive >= maxFailures
}

// scrapeEndpoint fetches one endpoint's state and records the outcome.
// The preferred path is the binary /delta endpoint: the scraper names the
// generation it holds and receives only the cells and windows that
// changed since (or a 304 when nothing did). Endpoints that do not serve
// /delta fall back to the JSON documents, conditional on the ETag as
// before, so either way an idle endpoint costs a header exchange.
func (f *Federator) scrapeEndpoint(ctx context.Context, s *endpointState) error {
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	attempt := time.Now()
	f.mu.Lock()
	prevETag := s.etag
	tryDelta := !f.noDelta && !s.jsonOnly
	base := &tracefmt.DeltaState{Cube: s.cube, Series: s.windows}
	base.Boot, base.Gen, _ = parseETag(prevETag)
	f.mu.Unlock()

	var (
		cube      *trace.Cube
		windows   *temporal.Series
		etag      string
		unchanged bool
		usedDelta bool
		fetched   int64
		err       error
	)
	if tryDelta {
		var state *tracefmt.DeltaState
		state, unchanged, fetched, err = f.fetchDelta(ctx, s.deltaURL(), base)
		switch {
		case errors.Is(err, errDeltaUnsupported):
			// The endpoint predates the protocol: remember and fall back.
			f.mu.Lock()
			s.jsonOnly = true
			f.mu.Unlock()
			err = nil
		case err == nil:
			usedDelta = true
			if !unchanged {
				cube, windows = state.Cube, state.Series
				etag = (&monitor.Snapshot{Boot: state.Boot, Gen: state.Gen}).ETag()
			}
		}
	}
	if !usedDelta && err == nil {
		var n int64
		cube, etag, unchanged, n, err = f.fetchCube(ctx, s.cubeURL(), prevETag)
		fetched += n
		if err == nil && !unchanged {
			// The window series is optional: an endpoint with windowing
			// disabled answers 503, an older endpoint 404. Neither makes
			// the endpoint unhealthy — it just contributes no timeline. On
			// 304 the fetch is skipped entirely: the snapshot ETag covers
			// both documents, an unchanged snapshot means unchanged
			// windows.
			windows, n = f.fetchWindows(ctx, s.windowsURL())
			fetched += n
		}
	}
	latency := time.Since(attempt)

	f.mu.Lock()
	defer f.mu.Unlock()
	s.lastAttempt = attempt
	s.lastLatency = latency
	s.bytes += uint64(fetched)
	if err != nil {
		wasStale := s.stale(f.maxFailures)
		s.failures++
		s.consecutive++
		s.lastError = err.Error()
		if !wasStale && s.stale(f.maxFailures) {
			f.logf("federate: endpoint %q stale after %d consecutive failures: %v",
				s.Name, s.consecutive, err)
			// The endpoint's cube just left the aggregate.
			f.gen++
		}
		return err
	}
	wasStale := s.stale(f.maxFailures)
	if wasStale {
		f.logf("federate: endpoint %q recovered after %d consecutive failures",
			s.Name, s.consecutive)
	}
	s.lastSuccess = time.Now()
	s.lastError = ""
	s.consecutive = 0
	s.scrapes++
	s.usedDelta = usedDelta
	if unchanged {
		// 304: the cached cube and windows are still this endpoint's
		// current snapshot, so the merged view built from them stays valid
		// and the merge generation must not advance — unless the endpoint
		// had gone stale, in which case its (unchanged) cube just
		// re-entered the aggregate.
		if wasStale {
			f.gen++
		}
		return nil
	}
	// A collector restart resets Snapshot.Gen, so a generation that goes
	// backwards (or a boot nonce that changed) is a new incarnation, not
	// new data from the old one. The refetched cube replaces the cached
	// one below either way; the log makes the restart visible, and the
	// generation bump guarantees the cached merged view is invalidated
	// rather than re-served. A boot change also re-arms the delta path
	// for an endpoint that had fallen back to JSON: the restart may have
	// brought a build that speaks it.
	if ob, og, ok := parseETag(prevETag); ok {
		if nb, ng, ok2 := parseETag(etag); ok2 && (nb != ob || ng < og) {
			f.logf("federate: endpoint %q restarted (snapshot generation %d after %d); invalidating its cached view",
				s.Name, ng, og)
			if nb != ob {
				s.jsonOnly = false
			}
		}
	}
	s.cube = cube
	s.windows = windows
	s.etag = etag
	// A fresh cube entered the aggregate (or replaced its predecessor).
	f.gen++
	return nil
}

// parseETag decodes a monitor snapshot entity tag ("b<boot>-g<gen>",
// quoted) into its boot nonce and fold generation.
func parseETag(tag string) (boot, gen uint64, ok bool) {
	if _, err := fmt.Sscanf(tag, "\"b%x-g%d\"", &boot, &gen); err != nil {
		return 0, 0, false
	}
	return boot, gen, true
}

// errDeltaUnsupported marks an endpoint that does not serve /delta.
var errDeltaUnsupported = errors.New("federate: endpoint does not serve /delta")

// errBodyTooLarge marks a response body that exceeded MaxBodyBytes.
var errBodyTooLarge = errors.New("federate: response body exceeds MaxBodyBytes")

// countingReader counts the bytes read from the underlying stream — the
// wire bytes, before any content decoding.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// boundedReader errors (rather than silently truncating, as
// io.LimitReader would) once more than max bytes come through.
type boundedReader struct {
	r         io.Reader
	remaining int64
}

func (b *boundedReader) Read(p []byte) (int, error) {
	if b.remaining < 0 {
		return 0, errBodyTooLarge
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	if b.remaining < 0 {
		return n, errBodyTooLarge
	}
	return n, err
}

// body wraps a response body in the byte counter and the size bound, and
// transparently decodes a gzip content coding — bounding the decompressed
// stream too, so a compression bomb fails at MaxBodyBytes either way.
// It returns the reader to decode from; counter.n accumulates the bytes
// on the wire.
func (f *Federator) body(resp *http.Response, counter *countingReader) (io.Reader, error) {
	if resp.ContentLength > f.maxBody {
		return nil, fmt.Errorf("%w (Content-Length %d > %d)", errBodyTooLarge, resp.ContentLength, f.maxBody)
	}
	counter.r = resp.Body
	var r io.Reader = &boundedReader{r: counter, remaining: f.maxBody}
	if resp.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, err
		}
		r = &boundedReader{r: gz, remaining: f.maxBody}
	}
	return r, nil
}

// fetchDelta asks the endpoint's /delta for everything since the base
// state the caller holds. It returns unchanged=true on 304 (the base is
// current), a decoded state on 200, errDeltaUnsupported on 404/405 (old
// endpoint), and bytes as counted on the wire. If the server answers
// with a delta the client cannot apply (a race around eviction), one
// full refetch is attempted before giving up.
func (f *Federator) fetchDelta(ctx context.Context, url string, base *tracefmt.DeltaState) (state *tracefmt.DeltaState, unchanged bool, bytes int64, err error) {
	get := func(since string) (*tracefmt.DeltaState, bool, int64, error) {
		target := url
		if since != "" {
			target += "?since=" + since
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
		if err != nil {
			return nil, false, 0, err
		}
		resp, err := f.client.Do(req)
		if err != nil {
			return nil, false, 0, err
		}
		defer resp.Body.Close()
		var counter countingReader
		switch resp.StatusCode {
		case http.StatusNotModified:
			return nil, true, 0, nil
		case http.StatusNotFound, http.StatusMethodNotAllowed:
			_, _ = io.CopyN(io.Discard, resp.Body, 512)
			return nil, false, 0, errDeltaUnsupported
		case http.StatusOK:
		default:
			_, _ = io.CopyN(io.Discard, resp.Body, 512)
			return nil, false, 0, fmt.Errorf("GET %s: status %d", target, resp.StatusCode)
		}
		body, err := f.body(resp, &counter)
		if err != nil {
			return nil, false, counter.n, fmt.Errorf("GET %s: %w", target, err)
		}
		doc, err := io.ReadAll(body)
		if err != nil {
			return nil, false, counter.n, fmt.Errorf("GET %s: %w", target, err)
		}
		st, err := tracefmt.DecodeSnapshot(doc, base)
		if err != nil {
			return nil, false, counter.n, fmt.Errorf("GET %s: %w", target, err)
		}
		return st, false, counter.n, nil
	}
	since := ""
	if base.Boot != 0 {
		since = fmt.Sprintf("b%x-g%d", base.Boot, base.Gen)
	}
	state, unchanged, bytes, err = get(since)
	if errors.Is(err, tracefmt.ErrDeltaBase) && since != "" {
		// The server sent a delta against a base we no longer hold (or
		// vice versa); one unconditional fetch gets a full document.
		var n int64
		state, unchanged, n, err = get("")
		bytes += n
	}
	return state, unchanged, bytes, err
}

// fetchCube performs the HTTP GET and decodes the cube. etag, when
// non-empty, makes the request conditional (If-None-Match); a 304 answer
// returns unchanged=true with a nil cube, meaning the caller's cached
// cube is still current. The request negotiates a gzip content coding:
// cube JSON is highly compressible, and the body bound applies to both
// the wire and the decompressed stream.
func (f *Federator) fetchCube(ctx context.Context, url, etag string) (cube *trace.Cube, newETag string, unchanged bool, bytes int64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, "", false, 0, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, "", false, 0, err
	}
	defer resp.Body.Close()
	var counter countingReader
	if resp.StatusCode == http.StatusNotModified {
		_, _ = io.CopyN(io.Discard, resp.Body, 512)
		return nil, etag, true, 0, nil
	}
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then report.
		_, _ = io.CopyN(io.Discard, resp.Body, 512)
		return nil, "", false, 0, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := f.body(resp, &counter)
	if err != nil {
		return nil, "", false, counter.n, fmt.Errorf("GET %s: %w", url, err)
	}
	cube, err = tracefmt.ReadCubeJSON(body)
	if err != nil {
		return nil, "", false, counter.n, fmt.Errorf("GET %s: %w", url, err)
	}
	return cube, resp.Header.Get("ETag"), false, counter.n, nil
}

// fetchWindows fetches and decodes an endpoint's window series. A
// non-200 answer (windowing disabled, older endpoint) or a decode error
// returns a nil series: absent windows are a capability, not a failure.
// The wire byte count is returned either way.
func (f *Federator) fetchWindows(ctx context.Context, url string) (*temporal.Series, int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.CopyN(io.Discard, resp.Body, 512)
		return nil, 0
	}
	var counter countingReader
	body, err := f.body(resp, &counter)
	if err != nil {
		return nil, counter.n
	}
	var ser temporal.Series
	if err := json.NewDecoder(body).Decode(&ser); err != nil {
		return nil, counter.n
	}
	return &ser, counter.n
}

// backoff returns the jittered retry delay after n consecutive failures
// (n >= 1): base doubled per failure, capped, then drawn from
// [delay/2, delay) so synchronized failers spread out.
func (f *Federator) backoff(n int) time.Duration {
	d := f.backoffBase
	for i := 1; i < n && d < f.backoffMax; i++ {
		d *= 2
	}
	if d > f.backoffMax {
		d = f.backoffMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// ScrapeAll scrapes every endpoint once, concurrently, and returns after
// all scrapes finish. The daemon runs one synchronous round before
// serving so the first request already sees data; tests use it to drive
// the federator deterministically.
func (f *Federator) ScrapeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, s := range f.states {
		wg.Add(1)
		go func(s *endpointState) {
			defer wg.Done()
			_ = f.scrapeEndpoint(ctx, s)
		}(s)
	}
	wg.Wait()
}

// Run polls every endpoint until ctx is canceled: each endpoint is
// scraped on its own schedule — Interval after a success, exponential
// backoff with jitter after failures — so one slow endpoint never delays
// the others.
func (f *Federator) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, s := range f.states {
		wg.Add(1)
		go func(s *endpointState) {
			defer wg.Done()
			timer := time.NewTimer(0)
			defer timer.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
				delay := f.interval
				if err := f.scrapeEndpoint(ctx, s); err != nil {
					f.mu.Lock()
					n := s.consecutive
					f.mu.Unlock()
					delay = f.backoff(n)
				}
				timer.Reset(delay)
			}
		}(s)
	}
	wg.Wait()
}

// Snapshot merges the most recent cubes of all live (non-stale)
// endpoints into a federated monitor snapshot: ranks offset per job,
// regions namespaced by endpoint name, program time the longest job
// timeline (see trace.Federate). Endpoints that never delivered a cube
// or have gone stale are excluded, so a dead job degrades the view
// instead of corrupting it. The snapshot's Cube is nil while no live
// endpoint has data, matching an empty Collector.
func (f *Federator) Snapshot() *monitor.Snapshot {
	f.mu.Lock()
	// No scrape result changed since the last merge: re-serve the cached
	// immutable snapshot, so its precomputed marginals and memoized views
	// are reused instead of re-federating per request.
	if f.snap != nil && f.snapGen == f.gen {
		snap := f.snap
		f.mu.Unlock()
		return snap
	}
	gen := f.gen
	var jobs []trace.JobCube
	var winJobs []temporal.JobWindows
	var rankLabels []string
	haveWindows := false
	for _, s := range f.states {
		if s.cube != nil && !s.stale(f.maxFailures) {
			// A Raw endpoint (a lower federation tier) already namespaced
			// its regions; an empty label makes trace.Federate and
			// temporal.Merge take its names verbatim, so a tree's root
			// view is independent of the tree's shape.
			label := s.Name
			if s.Raw {
				label = ""
			}
			// Cubes and series are immutable once fetched; sharing the
			// pointers outside the lock is safe.
			jobs = append(jobs, trace.JobCube{Label: label, Cube: s.cube})
			// The job's rank slots in the merged series are its cube's
			// processors — the same offsets trace.Federate applies, so
			// window ranks and federated cube ranks coincide. An endpoint
			// without windows still occupies its slots. The Label
			// namespaces the job's per-region keys in the merged series
			// the way trace.Federate namespaces its cube regions.
			winJobs = append(winJobs, temporal.JobWindows{
				Procs:  s.cube.NumProcs(),
				Series: s.windows,
				Label:  label,
			})
			// Diagnosis findings name ranks in the merged rank space;
			// job-local labels ("name/3") keep them attributable.
			for r := 0; r < s.cube.NumProcs(); r++ {
				rankLabels = append(rankLabels, fmt.Sprintf("%s/%d", s.Name, r))
			}
			if s.windows != nil {
				haveWindows = true
			}
		}
	}
	f.mu.Unlock()

	snap := &monitor.Snapshot{Gen: gen, Boot: f.boot}
	if len(jobs) > 0 {
		cube, err := trace.Federate(jobs)
		if err != nil {
			// Shapes were validated endpoint-side and names deduplicated at
			// New; federation of well-formed cubes cannot fail. Serve an
			// empty snapshot rather than a torn one if it somehow does.
			f.logf("federate: merging %d cubes: %v", len(jobs), err)
			cube = nil
		}
		if cube != nil {
			// Marginals are computed once per merge; every handler on this
			// snapshot then reads them O(1).
			cube.Precompute()
			snap.Cube = cube
			snap.Span = cube.ProgramTime()
		}
		if haveWindows {
			ser, err := temporal.Merge(winJobs)
			if err != nil {
				// Mixed window widths or an endpoint reporting busy time
				// beyond its declared processors: the timeline view is
				// undefined, the cube view stays correct. Degrade just the
				// timeline.
				f.logf("federate: merging window series: %v", err)
			} else {
				// The endpoints bound their own series, but the merged ring
				// can still outgrow any one endpoint's cap (endpoints
				// decimate at different times), and an unbounded endpoint
				// must not make the federator unbounded.
				ser = temporal.BoundSeries(ser, f.windowCap)
				snap.Series = ser
				snap.Windows = ser.Stats()
				snap.Coarse = ser.CoarseStats()
				snap.RankLabels = rankLabels
				// Federated phase detection runs the offline segmentation on
				// the merged trajectory: Snapshot() may run concurrently, so
				// the stateless Segment beats sharing an incremental
				// segmenter here, and the merged series is rebuilt per poll
				// anyway. The automatic penalty matches what each endpoint's
				// own /phases.json uses.
				snap.Phases = temporal.SummarizePhases(ser, temporal.Segment(snap.Windows, 0))
			}
		}
	}

	f.mu.Lock()
	// Only cache if no scrape landed while merging; a racing scrape's
	// next Snapshot call rebuilds from the newer state either way.
	if f.gen == gen {
		f.snap = snap
		f.snapGen = gen
	}
	f.mu.Unlock()
	return snap
}

// EndpointHealth is one endpoint's scrape state as listed by /healthz.
type EndpointHealth struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Stale means MaxFailures or more consecutive failures: the
	// endpoint's cube is excluded from the federated aggregate until a
	// scrape succeeds again.
	Stale bool `json:"stale"`
	// HasCube reports whether any scrape ever delivered a cube.
	HasCube bool `json:"has_cube"`
	// HasWindows reports whether the last successful scrape also
	// delivered a window series (the endpoint has windowing enabled).
	HasWindows          bool   `json:"has_windows"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Scrapes             uint64 `json:"scrapes"`
	Failures            uint64 `json:"failures"`
	// LastSuccess and LastAttempt are the RFC 3339 times of the last
	// successful and the last attempted scrape, empty before any.
	// Comparing them shows how long an endpoint has been failing.
	LastSuccess string `json:"last_success,omitempty"`
	LastAttempt string `json:"last_attempt,omitempty"`
	// ScrapeMillis is the duration of the most recent scrape attempt in
	// milliseconds — the cube fetch plus, on success, the window fetch.
	ScrapeMillis float64 `json:"scrape_ms"`
	// Bytes is the total response body bytes fetched from the endpoint,
	// counted on the wire (before any content decoding). Delta scraping
	// shows up here: mostly-unchanged endpoints cost orders of magnitude
	// fewer bytes than full-JSON refetches.
	Bytes uint64 `json:"bytes"`
	// Delta reports whether the most recent successful scrape used the
	// binary /delta protocol (false: the JSON fallback).
	Delta bool `json:"delta"`
	// LastError is the most recent scrape error, empty after a success.
	LastError string `json:"last_error,omitempty"`
}

// Health returns the per-endpoint scrape states in configuration order.
func (f *Federator) Health() []EndpointHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]EndpointHealth, len(f.states))
	for i, s := range f.states {
		h := EndpointHealth{
			Name:                s.Name,
			URL:                 s.URL,
			Stale:               s.stale(f.maxFailures),
			HasCube:             s.cube != nil,
			HasWindows:          s.windows != nil,
			ConsecutiveFailures: s.consecutive,
			Scrapes:             s.scrapes,
			Failures:            s.failures,
			ScrapeMillis:        float64(s.lastLatency) / float64(time.Millisecond),
			Bytes:               s.bytes,
			Delta:               s.usedDelta,
			LastError:           s.lastError,
		}
		if !s.lastSuccess.IsZero() {
			h.LastSuccess = s.lastSuccess.Format(time.RFC3339Nano)
		}
		if !s.lastAttempt.IsZero() {
			h.LastAttempt = s.lastAttempt.Format(time.RFC3339Nano)
		}
		out[i] = h
	}
	return out
}
