package federate

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"loadimb/internal/monitor"
	"loadimb/internal/serve"
	"loadimb/internal/trace"
)

// TestFederatorEndpointRestart simulates a collector restart behind a
// stable URL: the replacement process publishes a fresh boot nonce and a
// fold generation that restarts from one — i.e. the endpoint's Gen goes
// backwards. The federator must treat that as new data (invalidate its
// cached merged view and serve the new incarnation's cube), never as
// "unchanged", and must log the restart.
func TestFederatorEndpointRestart(t *testing.T) {
	var handler atomic.Value // http.Handler
	c1 := monitor.NewCollector(monitor.Options{Window: 0.5})
	for _, e := range jobEvents(4, 0.5) {
		c1.Record(e)
	}
	handler.Store(serve.NewHandler(c1))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	var logMu sync.Mutex
	var logs []string
	f, err := New(Options{
		Endpoints: []Endpoint{{Name: "job-a", URL: srv.URL}},
		Client:    testClient,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Drive the first incarnation's fold generation past one, so the
	// restarted incarnation's generation is observably lower.
	f.ScrapeAll(ctx)
	c1.Record(trace.Event{Rank: 0, Region: "solve", Activity: "comp", Start: 3, End: 4})
	f.ScrapeAll(ctx)
	before := f.Snapshot()
	if before.Cube == nil {
		t.Fatal("no cube before the restart")
	}
	if before.Cube.NumProcs() != 4 {
		t.Fatalf("pre-restart cube has %d procs, want 4", before.Cube.NumProcs())
	}

	// Restart: a brand-new collector (fresh boot nonce, Gen back at one)
	// with different content takes over the URL.
	c2 := monitor.NewCollector(monitor.Options{Window: 0.5})
	for _, e := range jobEvents(2, 1.0) {
		c2.Record(e)
	}
	handler.Store(serve.NewHandler(c2))

	f.ScrapeAll(ctx)
	after := f.Snapshot()
	if after == before {
		t.Fatal("restarted endpoint was treated as unchanged: stale merged view re-served")
	}
	if after.Cube == nil || after.Cube.NumProcs() != 2 {
		t.Fatalf("post-restart snapshot does not reflect the new incarnation: %+v", after.Cube)
	}
	if after.Gen <= before.Gen {
		t.Fatalf("merge generation did not advance across the restart: %d -> %d", before.Gen, after.Gen)
	}

	logMu.Lock()
	defer logMu.Unlock()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "restarted") {
			found = true
		}
	}
	if !found {
		t.Errorf("restart was not logged; logs: %q", logs)
	}
}

// TestFederatorRecoveryAfter304: an endpoint that went stale and then
// answers 304 (its content never changed, only its reachability did)
// must re-enter the aggregate — the recovery must advance the merge
// generation even though no document body was transferred.
func TestFederatorRecoveryAfter304(t *testing.T) {
	var reject atomic.Bool
	c := monitor.NewCollector(monitor.Options{})
	for _, e := range jobEvents(3, 0.5) {
		c.Record(e)
	}
	inner := serve.NewHandler(c)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reject.Load() {
			http.Error(w, "transient outage", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	f, err := New(Options{
		Endpoints:   []Endpoint{{Name: "job-a", URL: srv.URL}},
		MaxFailures: 2,
		Client:      testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.ScrapeAll(ctx)
	live := f.Snapshot()
	if live.Cube == nil {
		t.Fatal("no cube after the first scrape")
	}

	reject.Store(true)
	f.ScrapeAll(ctx)
	f.ScrapeAll(ctx) // crosses MaxFailures: endpoint goes stale
	if down := f.Snapshot(); down.Cube != nil {
		t.Fatal("stale endpoint's cube still served")
	}

	reject.Store(false)
	// The collector content never changed, so this scrape answers 304 —
	// and must still bring the endpoint back into the aggregate.
	f.ScrapeAll(ctx)
	back := f.Snapshot()
	if back.Cube == nil {
		t.Fatal("endpoint did not rejoin the aggregate after recovering via 304")
	}
	if !back.Cube.EqualWithin(live.Cube, 0) {
		t.Fatal("recovered cube differs from the pre-outage cube")
	}
}
