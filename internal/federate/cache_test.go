package federate

import (
	"context"
	"testing"

	"loadimb/internal/trace"
)

// TestFederatorSnapshotCached checks Snapshot re-serves the same immutable
// snapshot while no scrape changed the live-cube set — including across a
// scrape round whose endpoint answered 304 Not Modified — and rebuilds
// once a scrape lands new data.
func TestFederatorSnapshotCached(t *testing.T) {
	srv, col := startEndpointCollector(t, jobSpec{name: "job-a", procs: 4, events: jobEvents(4, 0.5)})
	f, err := New(Options{
		Endpoints: []Endpoint{{Name: "job-a", URL: srv.URL}},
		Client:    testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.ScrapeAll(ctx)

	first := f.Snapshot()
	if first.Cube == nil {
		t.Fatal("snapshot has no cube after a successful scrape")
	}
	second := f.Snapshot()
	if second != first {
		t.Fatal("Snapshot re-federated with no scrape in between")
	}
	views, err := first.Views()
	if err != nil {
		t.Fatalf("Views: %v", err)
	}
	again, err := second.Views()
	if err != nil {
		t.Fatalf("Views (cached snapshot): %v", err)
	}
	if again != views {
		t.Fatal("cached snapshot recomputed its views")
	}

	// A scrape round against an unchanged endpoint answers 304: the
	// cached merge stays valid and must be re-served, not rebuilt — the
	// incremental-scrape property that keeps polling an idle cluster O(1).
	f.ScrapeAll(ctx)
	unchanged := f.Snapshot()
	if unchanged != first {
		t.Fatal("Snapshot re-federated although the endpoint answered 304")
	}

	// New data lands at the endpoint: the next scrape refetches and the
	// cached merge must be discarded.
	col.Record(trace.Event{Rank: 0, Region: "solve", Activity: "comp", Start: 5, End: 6})
	f.ScrapeAll(ctx)
	third := f.Snapshot()
	if third == first {
		t.Fatal("Snapshot served a stale merge after new data arrived")
	}
	if third.Gen <= first.Gen {
		t.Fatalf("generation did not advance after a scrape: %d -> %d", first.Gen, third.Gen)
	}
	// The new event must be in the federated cube.
	if third.Cube.EqualWithin(first.Cube, 0) {
		t.Fatal("re-scraped cube ignores the new event")
	}
}

// TestFederatorStaleTransitionInvalidates checks an endpoint going stale
// advances the generation, so the next Snapshot drops its cube instead of
// serving the cached aggregate.
func TestFederatorStaleTransitionInvalidates(t *testing.T) {
	srv := startEndpoint(t, jobSpec{name: "job-a", procs: 2, events: jobEvents(2, 0.5)})
	f, err := New(Options{
		Endpoints:   []Endpoint{{Name: "job-a", URL: srv.URL}},
		MaxFailures: 2,
		Client:      testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.ScrapeAll(ctx)
	live := f.Snapshot()
	if live.Cube == nil {
		t.Fatal("snapshot has no cube after a successful scrape")
	}

	// Kill the endpoint and scrape until it crosses MaxFailures.
	srv.Close()
	f.ScrapeAll(ctx)
	if snap := f.Snapshot(); snap != live {
		// One failure: not stale yet, the cached aggregate must survive.
		t.Fatal("a single failure below MaxFailures invalidated the cache")
	}
	f.ScrapeAll(ctx)
	snap := f.Snapshot()
	if snap == live {
		t.Fatal("stale transition did not invalidate the cached snapshot")
	}
	if snap.Cube != nil {
		t.Fatal("stale endpoint's cube still served in the aggregate")
	}
}
