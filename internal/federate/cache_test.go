package federate

import (
	"context"
	"testing"
)

// TestFederatorSnapshotCached checks Snapshot re-serves the same immutable
// snapshot while no scrape changed the live-cube set, and rebuilds after a
// scrape round lands new cubes.
func TestFederatorSnapshotCached(t *testing.T) {
	srv := startEndpoint(t, jobSpec{name: "job-a", procs: 4, events: jobEvents(4, 0.5)})
	f, err := New(Options{
		Endpoints: []Endpoint{{Name: "job-a", URL: srv.URL}},
		Client:    testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.ScrapeAll(ctx)

	first := f.Snapshot()
	if first.Cube == nil {
		t.Fatal("snapshot has no cube after a successful scrape")
	}
	second := f.Snapshot()
	if second != first {
		t.Fatal("Snapshot re-federated with no scrape in between")
	}
	views, err := first.Views()
	if err != nil {
		t.Fatalf("Views: %v", err)
	}
	again, err := second.Views()
	if err != nil {
		t.Fatalf("Views (cached snapshot): %v", err)
	}
	if again != views {
		t.Fatal("cached snapshot recomputed its views")
	}

	// A new scrape round delivers a fresh cube pointer: the cached merge
	// must be discarded.
	f.ScrapeAll(ctx)
	third := f.Snapshot()
	if third == first {
		t.Fatal("Snapshot served a stale merge after a scrape")
	}
	if third.Gen <= first.Gen {
		t.Fatalf("generation did not advance after a scrape: %d -> %d", first.Gen, third.Gen)
	}
	// The data did not change, so the analysis must not either.
	if !third.Cube.EqualWithin(first.Cube, 0) {
		t.Fatal("re-scraped cube differs from the first scrape of identical data")
	}
}

// TestFederatorStaleTransitionInvalidates checks an endpoint going stale
// advances the generation, so the next Snapshot drops its cube instead of
// serving the cached aggregate.
func TestFederatorStaleTransitionInvalidates(t *testing.T) {
	srv := startEndpoint(t, jobSpec{name: "job-a", procs: 2, events: jobEvents(2, 0.5)})
	f, err := New(Options{
		Endpoints:   []Endpoint{{Name: "job-a", URL: srv.URL}},
		MaxFailures: 2,
		Client:      testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.ScrapeAll(ctx)
	live := f.Snapshot()
	if live.Cube == nil {
		t.Fatal("snapshot has no cube after a successful scrape")
	}

	// Kill the endpoint and scrape until it crosses MaxFailures.
	srv.Close()
	f.ScrapeAll(ctx)
	if snap := f.Snapshot(); snap != live {
		// One failure: not stale yet, the cached aggregate must survive.
		t.Fatal("a single failure below MaxFailures invalidated the cache")
	}
	f.ScrapeAll(ctx)
	snap := f.Snapshot()
	if snap == live {
		t.Fatal("stale transition did not invalidate the cached snapshot")
	}
	if snap.Cube != nil {
		t.Fatal("stale endpoint's cube still served in the aggregate")
	}
}
