package federate

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/serve"
	"loadimb/internal/trace"
)

// treeWindow is the window width every tier in the topology tests uses.
const treeWindow = 0.5

// oracleCollector folds every job's events into ONE collector exactly as
// the federation namespaces them — regions prefixed "job/", ranks offset
// by the preceding jobs' processor counts, jobs in listed order — and
// returns its snapshot: the all-events oracle every topology must match
// bit for bit.
func oracleCollector(t *testing.T, jobs []jobSpec) *monitor.Snapshot {
	t.Helper()
	c := monitor.NewCollector(monitor.Options{Shards: 1, Window: treeWindow})
	offset := 0
	for _, job := range jobs {
		for _, e := range job.events {
			e.Rank += offset
			e.Region = job.name + "/" + e.Region
			c.Record(e)
		}
		offset += job.procs
	}
	return c.Snapshot()
}

// startLeaf serves one job through a windowed collector.
func startLeaf(t *testing.T, job jobSpec) *httptest.Server {
	t.Helper()
	c := monitor.NewCollector(monitor.Options{Shards: 1, Window: treeWindow})
	for _, e := range job.events {
		c.Record(e)
	}
	return serveCollector(t, c)
}

func serveCollector(t *testing.T, c *monitor.Collector) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(serve.NewHandler(c))
	t.Cleanup(srv.Close)
	return srv
}

// startFederator builds a federator over the endpoints, scrapes them
// once, and serves its exposition (including /delta) so a higher tier
// can scrape it like any collector.
func startFederator(t *testing.T, endpoints []Endpoint) (*Federator, *httptest.Server) {
	t.Helper()
	f, err := New(Options{
		Endpoints: endpoints,
		Timeout:   5 * time.Second,
		Client:    testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	srv := httptest.NewServer(Handler(f))
	t.Cleanup(srv.Close)
	return f, srv
}

// cubeBitsEqual requires the two cubes to agree exactly: same axes in
// the same order, bit-identical cell values and program time.
func cubeBitsEqual(t *testing.T, topo string, got, want *trace.Cube) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: cube nil: got %v want %v", topo, got == nil, want == nil)
	}
	if !reflect.DeepEqual(got.Regions(), want.Regions()) {
		t.Fatalf("%s: regions %v, want %v", topo, got.Regions(), want.Regions())
	}
	if !reflect.DeepEqual(got.Activities(), want.Activities()) {
		t.Fatalf("%s: activities %v, want %v", topo, got.Activities(), want.Activities())
	}
	if got.NumProcs() != want.NumProcs() {
		t.Fatalf("%s: procs %d, want %d", topo, got.NumProcs(), want.NumProcs())
	}
	for i := 0; i < want.NumRegions(); i++ {
		for j := 0; j < want.NumActivities(); j++ {
			gv, _ := got.ProcTimes(i, j)
			wv, _ := want.ProcTimes(i, j)
			for p := range wv {
				if math.Float64bits(gv[p]) != math.Float64bits(wv[p]) {
					t.Fatalf("%s: cell (%d,%d,%d) = %v, want %v", topo, i, j, p, gv[p], wv[p])
				}
			}
		}
	}
	if math.Float64bits(got.ProgramTime()) != math.Float64bits(want.ProgramTime()) {
		t.Fatalf("%s: program time %v, want %v", topo, got.ProgramTime(), want.ProgramTime())
	}
}

// TestFederationTopologyProperty is the composition property: ANY
// federation topology over the same jobs — flat, 2-tier, unbalanced —
// yields a root cube and window series bit-identical to one oracle
// collector that folded every event itself. Higher tiers scrape lower
// federators as Raw endpoints (the lower tier already namespaced its
// regions and ranks), so re-aggregation must be the identity.
func TestFederationTopologyProperty(t *testing.T) {
	jobs := []jobSpec{
		{name: "job0", procs: 3},
		{name: "job1", procs: 4},
		{name: "job2", procs: 2},
	}
	skews := []float64{0.2, 0.65, 0}
	var leaves []*httptest.Server
	for i := range jobs {
		jobs[i].events = jobEvents(jobs[i].procs, skews[i])
		leaves = append(leaves, startLeaf(t, jobs[i]))
	}
	oracle := oracleCollector(t, jobs)
	if oracle.Cube == nil || oracle.Series == nil {
		t.Fatal("oracle collector has no cube or series")
	}

	check := func(topo string, root *Federator) {
		t.Helper()
		snap := root.Snapshot()
		cubeBitsEqual(t, topo, snap.Cube, oracle.Cube)
		if !reflect.DeepEqual(snap.Series, oracle.Series) {
			t.Fatalf("%s: root window series differs from the oracle:\n got %+v\nwant %+v",
				topo, snap.Series, oracle.Series)
		}
	}

	t.Run("flat", func(t *testing.T) {
		root, _ := startFederator(t, []Endpoint{
			{Name: "job0", URL: leaves[0].URL},
			{Name: "job1", URL: leaves[1].URL},
			{Name: "job2", URL: leaves[2].URL},
		})
		check("flat", root)
	})

	t.Run("two-tier", func(t *testing.T) {
		_, midA := startFederator(t, []Endpoint{
			{Name: "job0", URL: leaves[0].URL},
			{Name: "job1", URL: leaves[1].URL},
		})
		_, midB := startFederator(t, []Endpoint{
			{Name: "job2", URL: leaves[2].URL},
		})
		root, _ := startFederator(t, []Endpoint{
			{Name: "midA", URL: midA.URL, Raw: true},
			{Name: "midB", URL: midB.URL, Raw: true},
		})
		check("two-tier", root)
	})

	t.Run("unbalanced", func(t *testing.T) {
		// One leaf hangs directly off the root while its siblings sit
		// behind an intermediate federator.
		_, mid := startFederator(t, []Endpoint{
			{Name: "job1", URL: leaves[1].URL},
			{Name: "job2", URL: leaves[2].URL},
		})
		root, _ := startFederator(t, []Endpoint{
			{Name: "job0", URL: leaves[0].URL},
			{Name: "mid", URL: mid.URL, Raw: true},
		})
		check("unbalanced", root)
	})
}

// TestFederationTwoTierDelta: a federator's own /delta endpoint carries
// its merged state to a higher tier — the root's second scrape of an
// unchanged mid federator must ride the delta path (a 304, zero new
// bytes for the documents), and when a leaf below the mid moves, the
// update must propagate through both tiers intact.
func TestFederationTwoTierDelta(t *testing.T) {
	job := jobSpec{name: "job0", procs: 3, events: jobEvents(3, 0.4)}
	c := monitor.NewCollector(monitor.Options{Shards: 1, Window: treeWindow})
	for _, e := range job.events {
		c.Record(e)
	}
	leaf := serveCollector(t, c)

	mid, midSrv := startFederator(t, []Endpoint{{Name: "job0", URL: leaf.URL}})
	root, _ := startFederator(t, []Endpoint{{Name: "mid", URL: midSrv.URL, Raw: true}})

	health := root.Health()
	if len(health) != 1 || !health[0].HasCube {
		t.Fatalf("root has no cube from the mid federator: %+v", health)
	}
	if !health[0].Delta {
		t.Fatalf("root's scrape of the mid federator did not use the delta protocol: %+v", health[0])
	}
	bytesAfterFirst := health[0].Bytes

	// Unchanged mid: the rescrape must cost a 304, not a document.
	ctx := context.Background()
	root.ScrapeAll(ctx)
	health = root.Health()
	if got := health[0].Bytes; got != bytesAfterFirst {
		t.Fatalf("rescrape of an unchanged federator moved %d bytes", got-bytesAfterFirst)
	}

	// A leaf event must propagate: leaf -> mid -> root.
	c.Record(trace.Event{Rank: 0, Region: "solve", Activity: "comp", Start: 10, End: 12})
	mid.ScrapeAll(ctx)
	root.ScrapeAll(ctx)
	snap := root.Snapshot()
	i, j, ok := -1, -1, false
	for ri, r := range snap.Cube.Regions() {
		if r == "job0/solve" {
			i = ri
		}
	}
	for ai, a := range snap.Cube.Activities() {
		if a == "comp" {
			j = ai
		}
	}
	ok = i >= 0 && j >= 0
	if !ok {
		t.Fatalf("root cube lost the leaf's axes: regions %v activities %v",
			snap.Cube.Regions(), snap.Cube.Activities())
	}
	tv, err := snap.Cube.ProcTimes(i, j)
	if err != nil {
		t.Fatal(err)
	}
	mv, merr := mid.Snapshot().Cube.ProcTimes(i, j)
	if merr != nil {
		t.Fatal(merr)
	}
	if math.Float64bits(tv[0]) != math.Float64bits(mv[0]) {
		t.Fatalf("leaf update did not propagate to the root: root %v, mid %v", tv[0], mv[0])
	}
	if tv[0] < 2 {
		t.Fatalf("root cell job0/solve/comp rank0 = %v, want the new 2s event included", tv[0])
	}
}
