package federate

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"loadimb/internal/serve"
)

// Federation metric families served at /metrics ahead of the cube gauges.
const (
	MetricEndpoints           = "loadimb_fed_endpoints"
	MetricEndpointsStale      = "loadimb_fed_endpoints_stale"
	MetricEndpointStale       = "loadimb_fed_endpoint_stale"
	MetricEndpointScrapes     = "loadimb_fed_endpoint_scrapes_total"
	MetricEndpointFailures    = "loadimb_fed_endpoint_failures_total"
	MetricEndpointConsecutive = "loadimb_fed_endpoint_consecutive_failures"
	MetricEndpointLatency     = "loadimb_fed_endpoint_scrape_seconds"
	MetricEndpointBytes       = "loadimb_fed_endpoint_bytes_total"
	MetricEndpointDelta       = "loadimb_fed_endpoint_delta"
)

// healthzPayload is the /healthz document: an overall status plus the
// per-endpoint scrape states.
type healthzPayload struct {
	// Status is "ok" while every endpoint is live, "degraded" when some
	// (but not all) are stale or still cube-less, and "down" when no
	// endpoint contributes to the aggregate.
	Status    string           `json:"status"`
	Endpoints []EndpointHealth `json:"endpoints"`
}

// status summarizes the endpoint states into the /healthz status word.
func status(eps []EndpointHealth) string {
	live, contributing := 0, 0
	for _, ep := range eps {
		if !ep.Stale {
			live++
			if ep.HasCube {
				contributing++
			}
		}
	}
	switch {
	case contributing == 0:
		return "down"
	case live < len(eps) || contributing < live:
		return "degraded"
	default:
		return "ok"
	}
}

// Handler returns the federated exposition endpoint set — the exact
// surface imbamon serves (serve.Mux pointed at the federated snapshot),
// so one Prometheus scrape of an imbafed gives ID_P, ID_ij, ID_A/SID_A,
// ID_C/SID_C and the Gini coefficient for the whole cluster, and another
// imbafed can scrape this one exactly like a leaf collector (including
// the binary /delta path) to build a federation tree. Differences from
// the collector surface:
//
//	/healthz   per-endpoint scrape state: last success/attempt, scrape
//	           latency, bytes fetched, consecutive failures, staleness
//	           (503 when no endpoint contributes)
//	/metrics   federation scrape-state gauges ahead of the cube families
//	/          plain-text index instead of the dashboard
func Handler(f *Federator) http.Handler {
	return serve.Mux(f,
		serve.WithHealth(func(w http.ResponseWriter, r *http.Request) {
			eps := f.Health()
			payload := healthzPayload{Status: status(eps), Endpoints: eps}
			w.Header().Set("Content-Type", "application/json")
			if payload.Status == "down" {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(payload)
		}),
		// The snapshot's Events/Dropped counters are zero here: scrapes
		// carry no event counts, and the federated exposition reports
		// scrape state through the families above instead.
		serve.WithMetricsPrefix(func(w io.Writer) {
			writeFederationMetrics(w, f.Health())
		}),
		serve.WithIndex(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "loadimb federated monitor (%d endpoints)\n\n", len(f.Health()))
			fmt.Fprintln(w, "endpoints: /metrics /cube.json /lorenz.json /timeline.json /windows.json /phases.json /diagnose.json /delta /healthz")
		}),
	)
}

// writeFederationMetrics renders the scrape-state families in Prometheus
// text format.
func writeFederationMetrics(w io.Writer, eps []EndpointHealth) {
	stale := 0
	for _, ep := range eps {
		if ep.Stale {
			stale++
		}
	}
	fmt.Fprintf(w, "# HELP %s Endpoints configured for federation.\n# TYPE %s gauge\n", MetricEndpoints, MetricEndpoints)
	fmt.Fprintf(w, "%s %d\n", MetricEndpoints, len(eps))
	fmt.Fprintf(w, "# HELP %s Endpoints currently stale (excluded from the aggregate).\n# TYPE %s gauge\n", MetricEndpointsStale, MetricEndpointsStale)
	fmt.Fprintf(w, "%s %d\n", MetricEndpointsStale, stale)
	families := []struct {
		name, help, typ string
		value           func(EndpointHealth) uint64
	}{
		{MetricEndpointStale, "Whether the endpoint is stale (1) or live (0).", "gauge",
			func(ep EndpointHealth) uint64 {
				if ep.Stale {
					return 1
				}
				return 0
			}},
		{MetricEndpointScrapes, "Successful scrapes of the endpoint.", "counter",
			func(ep EndpointHealth) uint64 { return ep.Scrapes }},
		{MetricEndpointFailures, "Failed scrapes of the endpoint.", "counter",
			func(ep EndpointHealth) uint64 { return ep.Failures }},
		{MetricEndpointConsecutive, "Consecutive scrape failures since the last success.", "gauge",
			func(ep EndpointHealth) uint64 { return uint64(ep.ConsecutiveFailures) }},
		{MetricEndpointBytes, "Response body bytes fetched from the endpoint.", "counter",
			func(ep EndpointHealth) uint64 { return ep.Bytes }},
		{MetricEndpointDelta, "Whether the endpoint speaks the binary delta protocol (1) or JSON (0).", "gauge",
			func(ep EndpointHealth) uint64 {
				if ep.Delta {
					return 1
				}
				return 0
			}},
	}
	for _, fam := range families {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		for _, ep := range eps {
			// %q escapes backslashes, quotes and newlines the way the
			// Prometheus text format expects.
			fmt.Fprintf(w, "%s{endpoint=%q} %d\n", fam.name, ep.Name, fam.value(ep))
		}
	}
	fmt.Fprintf(w, "# HELP %s Duration of the endpoint's most recent scrape attempt.\n# TYPE %s gauge\n", MetricEndpointLatency, MetricEndpointLatency)
	for _, ep := range eps {
		fmt.Fprintf(w, "%s{endpoint=%q} %g\n", MetricEndpointLatency, ep.Name, ep.ScrapeMillis/1000)
	}
}
