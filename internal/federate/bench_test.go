package federate

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/serve"
	"loadimb/internal/trace"
)

// benchEndpoints is the simulated fleet size: one httptest server hosts
// this many independent collectors behind path prefixes, so the bench
// measures protocol bytes and scrape fan-out without 100 real sockets.
const benchEndpoints = 100

// benchFleet stands up the fleet and returns the collectors (to mutate
// between rounds) and the federator's endpoint list.
func benchFleet(b *testing.B) ([]*monitor.Collector, []Endpoint, *httptest.Server) {
	b.Helper()
	mux := http.NewServeMux()
	collectors := make([]*monitor.Collector, benchEndpoints)
	endpoints := make([]Endpoint, benchEndpoints)
	for i := range collectors {
		c := monitor.NewCollector(monitor.Options{Shards: 1, Window: 0.25})
		// A realistic scrape target: a job some minutes into its run, with
		// a few hundred windows of trajectory behind it.
		for _, e := range jobEvents(8, 0.3+0.01*float64(i)) {
			c.Record(e)
		}
		for w := 0; w < 240; w++ {
			for p := 0; p < 8; p++ {
				start := 10 + 0.25*float64(w) + 0.01*float64(p)
				c.Record(trace.Event{Rank: p, Region: "solve", Activity: "comp",
					Start: start, End: start + 0.2})
			}
		}
		collectors[i] = c
		prefix := fmt.Sprintf("/ep%d", i)
		mux.Handle(prefix+"/", http.StripPrefix(prefix, serve.NewHandler(c)))
		endpoints[i] = Endpoint{Name: fmt.Sprintf("job%d", i), URL: prefix}
	}
	srv := httptest.NewServer(mux)
	b.Cleanup(srv.Close)
	for i := range endpoints {
		endpoints[i].URL = srv.URL + endpoints[i].URL
	}
	return collectors, endpoints, srv
}

// BenchmarkFederateScrape measures one steady-state scrape round of a
// 100-endpoint fleet where a single endpoint changed since the last
// round — the common case for any real scrape interval. The delta
// sub-benchmark rides LIFP (99 endpoints answer 304, one ships a
// cell-level diff); json forces the full-document JSON path with its
// ETag caching. Reported metrics: wire_B/op is body bytes fetched per
// round (the ≥10x delta-vs-JSON reduction in BENCH_federate.json), and
// p99_ms is the 99th-percentile per-endpoint scrape latency.
func BenchmarkFederateScrape(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"delta", false}, {"json", true}} {
		b.Run(mode.name, func(b *testing.B) {
			collectors, endpoints, _ := benchFleet(b)
			f, err := New(Options{
				Endpoints:    endpoints,
				Timeout:      30 * time.Second,
				DisableDelta: mode.disable,
				Client:       &http.Client{Timeout: 30 * time.Second},
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			f.ScrapeAll(ctx) // cold sync: every endpoint ships a full document
			if f.Snapshot().Cube == nil {
				b.Fatal("fleet scrape produced no cube")
			}
			var startBytes uint64
			for _, h := range f.Health() {
				startBytes += h.Bytes
			}
			var latencies []float64
			at := 200.0
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				collectors[n%benchEndpoints].Record(trace.Event{
					Rank: 1, Region: "solve", Activity: "comp", Start: at, End: at + 0.4,
				})
				at += 0.5
				f.ScrapeAll(ctx)
				for _, h := range f.Health() {
					latencies = append(latencies, h.ScrapeMillis)
				}
			}
			b.StopTimer()
			var endBytes uint64
			for _, h := range f.Health() {
				endBytes += h.Bytes
			}
			b.ReportMetric(float64(endBytes-startBytes)/float64(b.N), "wire_B/op")
			sort.Float64s(latencies)
			if len(latencies) > 0 {
				b.ReportMetric(latencies[len(latencies)*99/100], "p99_ms")
			}
		})
	}
}
