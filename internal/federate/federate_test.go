package federate

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loadimb/internal/core"
	"loadimb/internal/monitor"
	"loadimb/internal/serve"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

// testClient bounds every test request so a hung server fails fast.
var testClient = &http.Client{Timeout: 10 * time.Second}

// jobSpec is one simulated imbamon instance: a name, its processor count
// and the events its collector has folded.
type jobSpec struct {
	name   string
	procs  int
	events []trace.Event
}

// jobEvents builds a deterministic, imbalanced event set: every rank runs
// init and solve, with computation skewed across ranks and a little
// communication whose length varies by rank parity.
func jobEvents(procs int, skew float64) []trace.Event {
	var evs []trace.Event
	for p := 0; p < procs; p++ {
		comp := 1 + skew*float64(p)
		comm := 0.1 + 0.2*float64(p%3)
		evs = append(evs,
			trace.Event{Rank: p, Region: "init", Activity: "comp", Start: 0, End: 0.5},
			trace.Event{Rank: p, Region: "solve", Activity: "comp", Start: 0.5, End: 0.5 + comp},
			trace.Event{Rank: p, Region: "solve", Activity: "comm", Start: 0.5 + comp, End: 0.5 + comp + comm},
		)
	}
	return evs
}

// startEndpoint serves a collector holding the job's events through the
// real monitor handler set.
func startEndpoint(t *testing.T, job jobSpec) *httptest.Server {
	t.Helper()
	srv, _ := startEndpointCollector(t, job)
	return srv
}

// startEndpointCollector is startEndpoint exposing the collector too, for
// tests that push more events between scrape rounds.
func startEndpointCollector(t *testing.T, job jobSpec) (*httptest.Server, *monitor.Collector) {
	t.Helper()
	c := monitor.NewCollector(monitor.Options{})
	for _, e := range job.events {
		c.Record(e)
	}
	srv := httptest.NewServer(serve.NewHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

// mergedOracle merges the jobs' raw event logs offline the same way
// federation merges their cubes: ranks offset by the preceding jobs'
// processor counts, regions namespaced by job name.
func mergedOracle(t *testing.T, jobs []jobSpec) *trace.Cube {
	t.Helper()
	var lg trace.Log
	offset := 0
	for _, job := range jobs {
		for _, e := range job.events {
			e.Rank += offset
			e.Region = job.name + "/" + e.Region
			if err := lg.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		offset += job.procs
	}
	cube, err := lg.Aggregate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

// compareAnalyses checks every paper index of the two cubes to tol.
func compareAnalyses(t *testing.T, got, want *trace.Cube, tol float64) {
	t.Helper()
	ga, err := core.Analyze(got, core.AnalyzeOptions{})
	if err != nil {
		t.Fatalf("analyzing federated cube: %v", err)
	}
	wa, err := core.Analyze(want, core.AnalyzeOptions{})
	if err != nil {
		t.Fatalf("analyzing oracle cube: %v", err)
	}
	if math.Abs(got.ProgramTime()-want.ProgramTime()) > tol {
		t.Errorf("program time %g, want %g", got.ProgramTime(), want.ProgramTime())
	}
	if len(ga.Regions) != len(wa.Regions) || len(ga.Activities) != len(wa.Activities) {
		t.Fatalf("analysis shape %dx%d, want %dx%d",
			len(ga.Regions), len(ga.Activities), len(wa.Regions), len(wa.Activities))
	}
	for k := range ga.Regions {
		g, w := ga.Regions[k], wa.Regions[k]
		if g.Name != w.Name || g.Defined != w.Defined {
			t.Fatalf("region %d is %q/%v, want %q/%v", k, g.Name, g.Defined, w.Name, w.Defined)
		}
		if !w.Defined {
			continue
		}
		if math.Abs(g.ID-w.ID) > tol || math.Abs(g.SID-w.SID) > tol {
			t.Errorf("region %q ID_C/SID_C = %g/%g, want %g/%g", g.Name, g.ID, g.SID, w.ID, w.SID)
		}
	}
	for k := range ga.Activities {
		g, w := ga.Activities[k], wa.Activities[k]
		if g.Name != w.Name || g.Defined != w.Defined {
			t.Fatalf("activity %d is %q/%v, want %q/%v", k, g.Name, g.Defined, w.Name, w.Defined)
		}
		if !w.Defined {
			continue
		}
		if math.Abs(g.ID-w.ID) > tol || math.Abs(g.SID-w.SID) > tol {
			t.Errorf("activity %q ID_A/SID_A = %g/%g, want %g/%g", g.Name, g.ID, g.SID, w.ID, w.SID)
		}
	}
	for i := range wa.Processors.ByRegion {
		for p := range wa.Processors.ByRegion[i] {
			g, w := ga.Processors.ByRegion[i][p], wa.Processors.ByRegion[i][p]
			if g.Defined != w.Defined {
				t.Fatalf("ID_P (%d,%d) defined=%v, want %v", i, p, g.Defined, w.Defined)
			}
			if w.Defined && math.Abs(g.ID-w.ID) > tol {
				t.Errorf("ID_P (%d,%d) = %g, want %g", i, p, g.ID, w.ID)
			}
		}
	}
	gTotals := make([]float64, got.NumProcs())
	wTotals := make([]float64, want.NumProcs())
	for p := range gTotals {
		gv, err := got.ProcTotalTime(p)
		if err != nil {
			t.Fatal(err)
		}
		wv, err := want.ProcTotalTime(p)
		if err != nil {
			t.Fatal(err)
		}
		gTotals[p], wTotals[p] = gv, wv
	}
	if math.Abs(stats.Gini.Of(gTotals)-stats.Gini.Of(wTotals)) > tol {
		t.Errorf("gini = %g, want %g", stats.Gini.Of(gTotals), stats.Gini.Of(wTotals))
	}
}

// TestFederationE2E is the acceptance test: three simulated imbamon
// endpoints are federated into one cube whose paper indices match
// core.Analyze of the offline-merged logs to 1e-9; killing one endpoint
// mid-run degrades it to stale in /healthz without corrupting the
// aggregate of the remaining two.
func TestFederationE2E(t *testing.T) {
	jobs := []jobSpec{
		{name: "job0", procs: 3},
		{name: "job1", procs: 4},
		{name: "job2", procs: 2},
	}
	skews := []float64{0.2, 0.65, 0}
	var endpoints []Endpoint
	var servers []*httptest.Server
	for i := range jobs {
		jobs[i].events = jobEvents(jobs[i].procs, skews[i])
		srv := startEndpoint(t, jobs[i])
		servers = append(servers, srv)
		endpoints = append(endpoints, Endpoint{Name: jobs[i].name, URL: srv.URL})
	}
	f, err := New(Options{
		Endpoints:   endpoints,
		Timeout:     5 * time.Second,
		MaxFailures: 2,
		Client:      testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.ScrapeAll(ctx)

	const tol = 1e-9
	snap := f.Snapshot()
	if snap.Cube == nil {
		t.Fatal("no federated cube after scraping all endpoints")
	}
	oracle := mergedOracle(t, jobs)
	if !snap.Cube.EqualWithin(oracle, tol) {
		t.Fatalf("federated cube differs from the offline merged-log aggregate\nfed %v procs T=%g, oracle %v procs T=%g",
			snap.Cube.NumProcs(), snap.Cube.ProgramTime(), oracle.NumProcs(), oracle.ProgramTime())
	}
	compareAnalyses(t, snap.Cube, oracle, tol)

	// The federated exposition serves the same cube.
	fedSrv := httptest.NewServer(Handler(f))
	defer fedSrv.Close()
	resp, err := testClient.Get(fedSrv.URL + "/cube.json")
	if err != nil {
		t.Fatal(err)
	}
	served, err := tracefmt.ReadCubeJSON(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("served federated cube does not parse: %v", err)
	}
	if !served.EqualWithin(oracle, tol) {
		t.Error("served federated cube differs from the oracle")
	}
	health := getHealthz(t, fedSrv.URL)
	if health.Status != "ok" || len(health.Endpoints) != 3 {
		t.Fatalf("healthz before degradation = %+v", health)
	}
	for _, ep := range health.Endpoints {
		if ep.Stale || !ep.HasCube || ep.Scrapes != 1 || ep.LastSuccess == "" {
			t.Errorf("endpoint %q health = %+v, want one fresh scrape", ep.Name, ep)
		}
	}

	// Kill job1 mid-run: after MaxFailures consecutive scrape failures it
	// must degrade to stale, and the aggregate must become exactly the
	// offline merge of the two surviving jobs (job2's ranks re-offset).
	servers[1].Close()
	f.ScrapeAll(ctx)
	f.ScrapeAll(ctx)
	health = getHealthz(t, fedSrv.URL)
	if health.Status != "degraded" {
		t.Fatalf("healthz status after kill = %q, want degraded", health.Status)
	}
	for _, ep := range health.Endpoints {
		wantStale := ep.Name == "job1"
		if ep.Stale != wantStale {
			t.Errorf("endpoint %q stale = %v, want %v (%+v)", ep.Name, ep.Stale, wantStale, ep)
		}
		if wantStale && (ep.ConsecutiveFailures < 2 || ep.LastError == "") {
			t.Errorf("stale endpoint health lacks failure detail: %+v", ep)
		}
	}
	snap = f.Snapshot()
	if snap.Cube == nil {
		t.Fatal("aggregate vanished after one endpoint died")
	}
	survivors := mergedOracle(t, []jobSpec{jobs[0], jobs[2]})
	if !snap.Cube.EqualWithin(survivors, tol) {
		t.Fatalf("degraded aggregate corrupted: %d procs T=%g, want %d procs T=%g",
			snap.Cube.NumProcs(), snap.Cube.ProgramTime(), survivors.NumProcs(), survivors.ProgramTime())
	}
	compareAnalyses(t, snap.Cube, survivors, tol)
}

func getHealthz(t *testing.T, base string) healthzPayload {
	t.Helper()
	resp, err := testClient.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload healthzPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestFederatorKeepsLastCubeUntilStale: a failing endpoint's last good
// cube stays in the aggregate while its consecutive failures are below
// MaxFailures, then drops out.
func TestFederatorKeepsLastCubeUntilStale(t *testing.T) {
	good := jobSpec{name: "good", procs: 2, events: jobEvents(2, 0.3)}
	flaky := jobSpec{name: "flaky", procs: 2, events: jobEvents(2, 0.8)}
	goodSrv := startEndpoint(t, good)

	c := monitor.NewCollector(monitor.Options{})
	for _, e := range flaky.events {
		c.Record(e)
	}
	failing := false
	inner := serve.NewHandler(c)
	flakySrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flakySrv.Close()

	f, err := New(Options{
		Endpoints: []Endpoint{
			{Name: "good", URL: goodSrv.URL},
			{Name: "flaky", URL: flakySrv.URL},
		},
		MaxFailures: 3,
		Client:      testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f.ScrapeAll(ctx)
	both := mergedOracle(t, []jobSpec{good, flaky})
	if snap := f.Snapshot(); snap.Cube == nil || !snap.Cube.EqualWithin(both, 1e-9) {
		t.Fatal("aggregate of two healthy endpoints wrong")
	}

	failing = true
	// Two failures: below MaxFailures, the last good cube must survive.
	f.ScrapeAll(ctx)
	f.ScrapeAll(ctx)
	if snap := f.Snapshot(); snap.Cube == nil || !snap.Cube.EqualWithin(both, 1e-9) {
		t.Error("endpoint dropped from the aggregate before reaching MaxFailures")
	}
	// Third failure: stale, only the good job remains.
	f.ScrapeAll(ctx)
	onlyGood := mergedOracle(t, []jobSpec{good})
	if snap := f.Snapshot(); snap.Cube == nil || !snap.Cube.EqualWithin(onlyGood, 1e-9) {
		t.Error("stale endpoint still poisons the aggregate")
	}
	// Recovery: one success rejoins the aggregate and resets the streak.
	failing = false
	f.ScrapeAll(ctx)
	if snap := f.Snapshot(); snap.Cube == nil || !snap.Cube.EqualWithin(both, 1e-9) {
		t.Error("recovered endpoint did not rejoin the aggregate")
	}
	for _, ep := range f.Health() {
		if ep.Stale || ep.ConsecutiveFailures != 0 {
			t.Errorf("endpoint %q not reset after recovery: %+v", ep.Name, ep)
		}
	}
}

// TestScrapeTimeout: a hanging endpoint fails the scrape after Timeout
// instead of blocking the round.
func TestScrapeTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	f, err := New(Options{
		Endpoints: []Endpoint{{Name: "slow", URL: slow.URL}},
		Timeout:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	f.ScrapeAll(context.Background())
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("scrape of a hanging endpoint took %v", elapsed)
	}
	ep := f.Health()[0]
	if ep.Failures != 1 || ep.LastError == "" {
		t.Errorf("timeout not recorded: %+v", ep)
	}
}

// TestSnapshotEmpty: before any successful scrape the federator serves
// the same "no data" shape as an empty collector, and the monitor
// handlers answer 503 rather than panicking.
func TestSnapshotEmpty(t *testing.T) {
	f, err := New(Options{Endpoints: []Endpoint{{Name: "a", URL: "http://127.0.0.1:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if snap := f.Snapshot(); snap.Cube != nil {
		t.Fatal("cube before any scrape")
	}
	srv := httptest.NewServer(Handler(f))
	defer srv.Close()
	resp, err := testClient.Get(srv.URL + "/cube.json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/cube.json with no data = %d, want 503", resp.StatusCode)
	}
	health := getHealthz(t, srv.URL)
	if health.Status != "down" {
		t.Errorf("healthz status with no data = %q, want down", health.Status)
	}
	// /metrics still serves the federation families.
	resp, err = testClient.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), MetricEndpoints+" 1") {
		t.Errorf("metrics missing %s:\n%s", MetricEndpoints, body)
	}
}

// TestRunLoopPolls drives the real Run loop (timers, backoff, jitter)
// against live endpoints and checks it keeps scraping until canceled.
func TestRunLoopPolls(t *testing.T) {
	job := jobSpec{name: "job", procs: 2, events: jobEvents(2, 0.4)}
	srv := startEndpoint(t, job)
	f, err := New(Options{
		Endpoints: []Endpoint{{Name: "job", URL: srv.URL}},
		Interval:  5 * time.Millisecond,
		Timeout:   time.Second,
		Client:    testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if f.Health()[0].Scrapes >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run loop did not keep polling")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run loop did not stop on cancel")
	}
	if snap := f.Snapshot(); snap.Cube == nil {
		t.Error("no cube after polling")
	}
}

// TestBackoffBounds: the retry delay grows exponentially from the base,
// caps at the maximum and stays within the jitter envelope [d/2, d].
func TestBackoffBounds(t *testing.T) {
	f, err := New(Options{
		Endpoints:   []Endpoint{{Name: "a", URL: "http://localhost:1"}},
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 8; n++ {
		want := 100 * time.Millisecond << (n - 1)
		if want > time.Second {
			want = time.Second
		}
		for trial := 0; trial < 50; trial++ {
			got := f.backoff(n)
			if got < want/2 || got > want {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", n, got, want/2, want)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("no endpoints accepted")
	}
	if _, err := New(Options{Endpoints: []Endpoint{{Name: "a"}}}); err == nil {
		t.Error("endpoint without URL accepted")
	}
	if _, err := New(Options{Endpoints: []Endpoint{
		{Name: "a", URL: "http://h1:1"},
		{Name: "a", URL: "http://h2:1"},
	}}); err == nil {
		t.Error("duplicate endpoint names accepted")
	}
	f, err := New(Options{Endpoints: []Endpoint{{URL: "http://node7:9190"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Health()[0].Name; got != "node7:9190" {
		t.Errorf("derived endpoint name = %q, want node7:9190", got)
	}
}
