package federate

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/serve"
	"loadimb/internal/trace"
)

// newTestFederator builds a federator over one endpoint with the given
// extra options applied.
func newTestFederator(t *testing.T, url string, mutate func(*Options)) *Federator {
	t.Helper()
	opts := Options{
		Endpoints: []Endpoint{{Name: "job", URL: url}},
		Timeout:   5 * time.Second,
		Client:    testClient,
	}
	if mutate != nil {
		mutate(&opts)
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestScrapeDeltaSavesBytes: once a client holds a snapshot, follow-up
// scrapes of a slightly-changed endpoint must move far fewer bytes over
// the delta path than the same scrapes forced through full JSON — the
// whole point of LIFP. Both federators must end up with identical cubes.
func TestScrapeDeltaSavesBytes(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{Shards: 1, Window: 0.25})
	for _, e := range jobEvents(16, 0.5) {
		c.Record(e)
	}
	srv := httptest.NewServer(serve.NewHandler(c))
	defer srv.Close()

	delta := newTestFederator(t, srv.URL, nil)
	full := newTestFederator(t, srv.URL, func(o *Options) { o.DisableDelta = true })
	ctx := context.Background()
	delta.ScrapeAll(ctx)
	full.ScrapeAll(ctx)

	dh, fh := delta.Health()[0], full.Health()[0]
	if !dh.Delta {
		t.Fatalf("delta federator did not use the delta protocol: %+v", dh)
	}
	if fh.Delta {
		t.Fatalf("DisableDelta federator used the delta protocol: %+v", fh)
	}
	deltaBase, fullBase := dh.Bytes, fh.Bytes

	// A small change, then rescrape: the delta carries one cell and one
	// window, full JSON re-ships everything.
	var deltaIncr, fullIncr uint64
	for i := 0; i < 3; i++ {
		c.Record(trace.Event{Rank: 3, Region: "solve", Activity: "comp",
			Start: 20 + float64(i), End: 20.5 + float64(i)})
		delta.ScrapeAll(ctx)
		full.ScrapeAll(ctx)
	}
	deltaIncr = delta.Health()[0].Bytes - deltaBase
	fullIncr = full.Health()[0].Bytes - fullBase
	if deltaIncr == 0 || fullIncr == 0 {
		t.Fatalf("no bytes moved: delta %d, full %d", deltaIncr, fullIncr)
	}
	if deltaIncr*4 >= fullIncr {
		t.Fatalf("delta path saved too little: %d bytes vs %d full-JSON bytes", deltaIncr, fullIncr)
	}
	if !delta.Snapshot().Cube.EqualWithin(full.Snapshot().Cube, 0) {
		t.Fatal("delta and full-JSON federators diverged")
	}
}

// TestScrapeDeltaFallback: an endpoint without /delta (an older
// collector build) must degrade to JSON scrapes transparently — and the
// fallback must be sticky, not re-probed every round.
func TestScrapeDeltaFallback(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{Shards: 1})
	for _, e := range jobEvents(4, 0.3) {
		c.Record(e)
	}
	inner := serve.NewHandler(c)
	var deltaProbes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/delta" {
			deltaProbes.Add(1)
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	f := newTestFederator(t, srv.URL, nil)
	ctx := context.Background()
	f.ScrapeAll(ctx)
	f.ScrapeAll(ctx)
	f.ScrapeAll(ctx)
	if probes := deltaProbes.Load(); probes != 1 {
		t.Fatalf("delta endpoint probed %d times, want exactly 1 (sticky fallback)", probes)
	}
	h := f.Health()[0]
	if h.Delta {
		t.Fatalf("health claims delta on a JSON-only endpoint: %+v", h)
	}
	if f.Snapshot().Cube == nil {
		t.Fatal("JSON fallback produced no cube")
	}
}

// TestScrapeBodyBound: a response body past MaxBodyBytes must fail the
// scrape — a hostile or broken endpoint cannot balloon the federator —
// and the failure must be visible in health.
func TestScrapeBodyBound(t *testing.T) {
	c := monitor.NewCollector(monitor.Options{Shards: 1})
	for _, e := range jobEvents(8, 0.5) {
		c.Record(e)
	}
	srv := httptest.NewServer(serve.NewHandler(c))
	defer srv.Close()

	f := newTestFederator(t, srv.URL, func(o *Options) { o.MaxBodyBytes = 64 })
	f.ScrapeAll(context.Background())
	h := f.Health()[0]
	if h.HasCube || h.Failures == 0 {
		t.Fatalf("64-byte body bound did not fail the scrape: %+v", h)
	}
	if f.Snapshot().Cube != nil {
		t.Fatal("bounded-out endpoint still contributed a cube")
	}
}

// TestFederatorRestartMidDeltaStream: a collector restart between two
// delta scrapes changes the boot nonce, so the in-flight delta chain is
// dead — the federator must force a full resync and end up with exactly
// the new incarnation's state, never a merge of the two boots.
func TestFederatorRestartMidDeltaStream(t *testing.T) {
	var handler atomic.Value
	c1 := monitor.NewCollector(monitor.Options{Shards: 1, Window: 0.5})
	for _, e := range jobEvents(4, 0.5) {
		c1.Record(e)
	}
	handler.Store(serve.NewHandler(c1))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	f := newTestFederator(t, srv.URL, nil)
	ctx := context.Background()

	// Establish a delta chain: full doc, then an incremental.
	f.ScrapeAll(ctx)
	c1.Record(trace.Event{Rank: 1, Region: "solve", Activity: "comp", Start: 8, End: 9})
	f.ScrapeAll(ctx)
	if h := f.Health()[0]; !h.Delta {
		t.Fatalf("delta chain not established: %+v", h)
	}

	// Restart mid-stream: new boot nonce, fresh generations, different
	// content at the same URL.
	c2 := monitor.NewCollector(monitor.Options{Shards: 1, Window: 0.5})
	for _, e := range jobEvents(2, 1.0) {
		c2.Record(e)
	}
	handler.Store(serve.NewHandler(c2))

	f.ScrapeAll(ctx)
	got := f.Snapshot()
	if got.Cube == nil {
		t.Fatal("no cube after the restart resync")
	}
	want := c2.Snapshot()
	if got.Cube.NumProcs() != want.Cube.NumProcs() {
		t.Fatalf("resynced cube has %d procs, want %d — boots were merged", got.Cube.NumProcs(), want.Cube.NumProcs())
	}
	// The federated cube namespaces regions; compare cell values through
	// the names.
	for i, r := range want.Cube.Regions() {
		gi := -1
		for ri, gr := range got.Cube.Regions() {
			if gr == "job/"+r {
				gi = ri
			}
		}
		if gi < 0 {
			t.Fatalf("region %q missing after resync: %v", r, got.Cube.Regions())
		}
		for j := range want.Cube.Activities() {
			wv, _ := want.Cube.ProcTimes(i, j)
			gv, _ := got.Cube.ProcTimes(gi, j)
			for p := range wv {
				if wv[p] != gv[p] {
					t.Fatalf("cell (%q,%d,%d) = %v, want %v", r, j, p, gv[p], wv[p])
				}
			}
		}
	}
}
