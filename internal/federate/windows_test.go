package federate

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"loadimb/internal/monitor"
	"loadimb/internal/serve"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// startWindowedEndpoint serves a windowed collector holding the job's
// events through the real monitor handler set.
func startWindowedEndpoint(t *testing.T, job jobSpec, window float64) *httptest.Server {
	t.Helper()
	c := monitor.NewCollector(monitor.Options{Window: window})
	for _, e := range job.events {
		c.Record(e)
	}
	srv := httptest.NewServer(serve.NewHandler(c))
	t.Cleanup(srv.Close)
	return srv
}

// timelineDoc mirrors the /timeline.json payload.
type timelineDoc struct {
	Window  float64              `json:"window"`
	Windows []monitor.WindowStat `json:"windows"`
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := testClient.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// TestFederatedTimelineAgreesWithLivePath is the acceptance property of
// the federated timeline: scraping N endpoints' window series and
// merging them must serve exactly the trajectory one live collector
// folding all the events (ranks offset per job, as trace.Federate
// numbers them) would serve.
func TestFederatedTimelineAgreesWithLivePath(t *testing.T) {
	const window = 0.5
	jobs := []jobSpec{
		{name: "jobA", procs: 4, events: jobEvents(4, 0.5)},
		{name: "jobB", procs: 3, events: jobEvents(3, 1.25)},
		{name: "jobC", procs: 5, events: jobEvents(5, 0)},
	}
	var endpoints []Endpoint
	for _, job := range jobs {
		srv := startWindowedEndpoint(t, job, window)
		endpoints = append(endpoints, Endpoint{Name: job.name, URL: srv.URL})
	}
	f, err := New(Options{Endpoints: endpoints, Client: testClient})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	fedSrv := httptest.NewServer(Handler(f))
	defer fedSrv.Close()

	var got timelineDoc
	getJSON(t, fedSrv.URL+"/timeline.json", &got)
	if got.Window != window {
		t.Fatalf("federated window width = %g, want %g", got.Window, window)
	}

	// The live oracle: one collector folds every event with ranks offset
	// by the preceding jobs' processor counts.
	oracle := monitor.NewCollector(monitor.Options{Window: window})
	offset := 0
	for _, job := range jobs {
		for _, e := range job.events {
			e.Rank += offset
			oracle.Record(e)
		}
		offset += job.procs
	}
	want := oracle.Snapshot().Windows

	gotJSON, err := json.Marshal(got.Windows)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("federated timeline diverges from the live path.\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}
}

// TestFederatedTimelineGolden locks the federated /timeline.json schema.
func TestFederatedTimelineGolden(t *testing.T) {
	jobs := []jobSpec{
		{name: "alpha", procs: 2, events: jobEvents(2, 0.5)},
		{name: "beta", procs: 3, events: jobEvents(3, 1)},
	}
	var endpoints []Endpoint
	for _, job := range jobs {
		srv := startWindowedEndpoint(t, job, 0.5)
		endpoints = append(endpoints, Endpoint{Name: job.name, URL: srv.URL})
	}
	f, err := New(Options{Endpoints: endpoints, Client: testClient})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	fedSrv := httptest.NewServer(Handler(f))
	defer fedSrv.Close()

	resp, err := testClient.Get(fedSrv.URL + "/timeline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/timeline.json = %d", resp.StatusCode)
	}
	path := filepath.Join("testdata", "timeline_federated.golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if string(want) != string(body) {
		t.Errorf("federated timeline drifted from golden.\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestFederationWithoutWindows: endpoints with windowing disabled still
// federate their cubes; the timeline is just empty and /windows.json
// answers 503.
func TestFederationWithoutWindows(t *testing.T) {
	srv := startEndpoint(t, jobSpec{name: "plain", procs: 2, events: jobEvents(2, 0.5)})
	f, err := New(Options{Endpoints: []Endpoint{{Name: "plain", URL: srv.URL}}, Client: testClient})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	snap := f.Snapshot()
	if snap.Cube == nil {
		t.Fatal("cube missing")
	}
	if snap.Series != nil || snap.Windows != nil {
		t.Errorf("windowless endpoints produced a timeline: %+v", snap.Windows)
	}
	fedSrv := httptest.NewServer(Handler(f))
	defer fedSrv.Close()
	resp, err := testClient.Get(fedSrv.URL + "/windows.json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/windows.json = %d, want 503", resp.StatusCode)
	}
	eps := f.Health()
	if eps[0].HasWindows {
		t.Error("health claims windows for a windowless endpoint")
	}
}

// TestHealthzScrapeTimings: /healthz reports last-attempt and
// last-success times plus the scrape latency.
func TestHealthzScrapeTimings(t *testing.T) {
	srv := startWindowedEndpoint(t, jobSpec{name: "j", procs: 2, events: jobEvents(2, 0.5)}, 0.5)
	f, err := New(Options{Endpoints: []Endpoint{{Name: "j", URL: srv.URL}}, Client: testClient})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	fedSrv := httptest.NewServer(Handler(f))
	defer fedSrv.Close()

	var payload struct {
		Status    string           `json:"status"`
		Endpoints []EndpointHealth `json:"endpoints"`
	}
	getJSON(t, fedSrv.URL+"/healthz", &payload)
	if payload.Status != "ok" {
		t.Fatalf("status %q, want ok", payload.Status)
	}
	ep := payload.Endpoints[0]
	if ep.LastAttempt == "" || ep.LastSuccess == "" {
		t.Errorf("missing scrape times: %+v", ep)
	}
	if ep.ScrapeMillis <= 0 {
		t.Errorf("scrape latency %g ms, want > 0", ep.ScrapeMillis)
	}
	if !ep.HasWindows {
		t.Error("health does not report the endpoint's window series")
	}

	// A failing endpoint keeps updating last_attempt while last_success
	// stays put.
	srv.Close()
	f.ScrapeAll(context.Background())
	eps := f.Health()
	if eps[0].LastAttempt == ep.LastAttempt {
		t.Errorf("last_attempt did not advance past %q", ep.LastAttempt)
	}
	if eps[0].LastSuccess != ep.LastSuccess {
		t.Errorf("last_success moved on a failure: %q -> %q", ep.LastSuccess, eps[0].LastSuccess)
	}
}
