package federate

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"loadimb/internal/diagnose"
	"loadimb/internal/monitor"
	"loadimb/internal/trace"
)

// TestFederatedDiagnoseAgreesWithLivePath extends the federation
// agreement property to the automatic diagnosis: the report the
// federator serves over the merged window series must equal what one
// live collector folding every event (ranks offset per job, regions
// pre-namespaced "job/region" the way Merge namespaces them) diagnoses,
// with the job-local rank labels attached. The merge preserves busy
// vectors bit for bit and Diagnose is deterministic, so the comparison
// is exact.
func TestFederatedDiagnoseAgreesWithLivePath(t *testing.T) {
	const window = 0.5
	jobs := []jobSpec{
		{name: "jobA", procs: 4, events: jobEvents(4, 0.1)},
		{name: "jobB", procs: 3, events: jobEvents(3, 0.1)},
	}
	// Inject a straggler into jobB's rank 1: a long extra computation in
	// the solve region, the localized fault the diagnosis must attribute
	// to the federated rank "jobB/1".
	jobs[1].events = append(jobs[1].events,
		trace.Event{Rank: 1, Region: "solve", Activity: "comp", Start: 2.0, End: 5.0})

	var endpoints []Endpoint
	for _, job := range jobs {
		srv := startWindowedEndpoint(t, job, window)
		endpoints = append(endpoints, Endpoint{Name: job.name, URL: srv.URL})
	}
	f, err := New(Options{Endpoints: endpoints, Client: testClient})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	fedSrv := httptest.NewServer(Handler(f))
	defer fedSrv.Close()

	var got diagnose.Report
	getJSON(t, fedSrv.URL+"/diagnose.json", &got)
	if got.Window != window || got.Procs != 7 {
		t.Fatalf("federated report head: window=%g procs=%d", got.Window, got.Procs)
	}

	// The oracle folds every event into one collector, ranks offset and
	// regions namespaced exactly as the federated merge does, then labels
	// the merged rank space job-locally before diagnosing.
	oracle := monitor.NewCollector(monitor.Options{Window: window})
	var labels []string
	offset := 0
	for _, job := range jobs {
		for _, e := range job.events {
			e.Rank += offset
			e.Region = job.name + "/" + e.Region
			oracle.Record(e)
		}
		for r := 0; r < job.procs; r++ {
			labels = append(labels, fmt.Sprintf("%s/%d", job.name, r))
		}
		offset += job.procs
	}
	snap := oracle.Snapshot()
	snap.RankLabels = labels
	want := snap.Diagnosis()

	gotJSON, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("federated diagnosis diverges from the live path.\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}

	// The dimensions carry job-namespaced regions and shared activities.
	kinds := map[string]bool{}
	for _, d := range got.Dimensions {
		kinds[d.Kind] = true
		if d.Kind == diagnose.KindRegion && !strings.Contains(d.Name, "/") {
			t.Errorf("federated region dimension %q is not job-namespaced", d.Name)
		}
	}
	if !kinds[diagnose.KindActivity] || !kinds[diagnose.KindRegion] {
		t.Errorf("dimension kinds = %v, want both activities and regions", kinds)
	}

	// The injected straggler is the top finding, named job-locally.
	if len(got.Findings) == 0 {
		t.Fatal("no federated findings on a run with an injected straggler")
	}
	top := got.Findings[0]
	if top.Rank != 5 || top.RankLabel != "jobB/1" {
		t.Errorf("top finding = rank %d label %q, want rank 5 label jobB/1: %q",
			top.Rank, top.RankLabel, top.Summary)
	}
	if !strings.Contains(top.Summary, "rank jobB/1") {
		t.Errorf("summary does not name the job-local rank: %q", top.Summary)
	}
}

// TestFederatedDiagnoseWithoutWindows answers 503, like the endpoints'
// own /diagnose.json while windowing is disabled.
func TestFederatedDiagnoseWithoutWindows(t *testing.T) {
	job := jobSpec{name: "plain", procs: 2, events: jobEvents(2, 0.5)}
	srv := startEndpoint(t, job) // windowing disabled: no /windows.json series
	f, err := New(Options{Endpoints: []Endpoint{{Name: job.name, URL: srv.URL}}, Client: testClient})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	fedSrv := httptest.NewServer(Handler(f))
	defer fedSrv.Close()
	resp, err := testClient.Get(fedSrv.URL + "/diagnose.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("/diagnose.json without windows = %d, want 503", resp.StatusCode)
	}
}
