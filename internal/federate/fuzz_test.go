package federate

import (
	"fmt"
	"math"
	"testing"

	"loadimb/internal/trace"
)

// FuzzFederate builds a fuzzer-chosen fleet of job cubes — varying shapes,
// overlapping or disjoint region/activity vocabularies, labeled and
// unlabeled jobs, with and without explicit program times — and checks the
// federation invariants the scraper relies on:
//
//   - processors are offset, never merged: the federated cube has exactly
//     the sum of the jobs' processor counts;
//   - processor-seconds are conserved: the federated instrumented total
//     equals the sum of the jobs' instrumented totals;
//   - the federated program time is the longest job timeline;
//   - federating a single unlabeled job is the identity.
func FuzzFederate(f *testing.F) {
	f.Add([]byte{3, 2, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 1, 1, 200})
	f.Add([]byte{2, 3, 1, 0, 0, 0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		// Header bytes pick the fleet shape; the rest feeds cell times.
		nJobs := 1 + int(data[0]%4)
		regions := []string{"init", "solve", "sweep"}[:1+int(data[1]%3)]
		activities := []string{"comp", "comm"}[:1+int(data[2]%2)]
		payload := data[3:]
		next := func(i int) float64 {
			if len(payload) == 0 {
				return 1
			}
			return float64(payload[i%len(payload)]) / 8
		}
		var jobs []trace.JobCube
		wantProcs := 0
		wantTotal := 0.0
		wantProgram := 0.0
		k := 0
		for j := 0; j < nJobs; j++ {
			procs := 1 + (j+int(data[0]))%3
			// Jobs alternate overlapping and disjoint vocabularies, and
			// every other job goes unlabeled so shared regions merge.
			rs := append([]string(nil), regions...)
			if j%2 == 1 {
				rs = append(rs, fmt.Sprintf("only%d", j))
			}
			cube, err := trace.NewCube(rs, activities, procs)
			if err != nil {
				t.Fatal(err)
			}
			jobSecs := 0.0
			for i := range rs {
				for a := range activities {
					for p := 0; p < procs; p++ {
						v := next(k)
						k++
						if err := cube.Set(i, a, p, v); err != nil {
							t.Fatal(err)
						}
						jobSecs += v
					}
				}
			}
			if j%2 == 0 {
				// An explicit wall clock longer than the busy mean.
				span := cube.RegionsTotal() + next(k)
				k++
				if err := cube.SetProgramTime(span); err != nil {
					t.Fatal(err)
				}
			}
			label := fmt.Sprintf("job%d", j)
			if j%2 == 1 {
				label = ""
			}
			jobs = append(jobs, trace.JobCube{Label: label, Cube: cube})
			wantProcs += procs
			wantTotal += jobSecs
			if pt := cube.ProgramTime(); pt > wantProgram {
				wantProgram = pt
			}
		}

		fed, err := trace.Federate(jobs)
		if err != nil {
			t.Fatalf("federating %d well-formed jobs: %v", nJobs, err)
		}
		if fed.NumProcs() != wantProcs {
			t.Fatalf("procs = %d, want %d", fed.NumProcs(), wantProcs)
		}
		tol := 1e-9 * (1 + wantTotal)
		if got := fed.RegionsTotal() * float64(fed.NumProcs()); math.Abs(got-wantTotal) > tol {
			t.Fatalf("processor-seconds = %g, want %g", got, wantTotal)
		}
		if math.Abs(fed.ProgramTime()-wantProgram) > tol {
			t.Fatalf("program time = %g, want longest job timeline %g",
				fed.ProgramTime(), wantProgram)
		}
		// Each job's processor block must carry exactly that job's seconds.
		offset := 0
		for j, job := range jobs {
			blockWant := job.Cube.RegionsTotal() * float64(job.Cube.NumProcs())
			block := 0.0
			for p := 0; p < job.Cube.NumProcs(); p++ {
				v, err := fed.ProcTotalTime(offset + p)
				if err != nil {
					t.Fatal(err)
				}
				block += v
			}
			if math.Abs(block-blockWant) > tol {
				t.Fatalf("job %d block seconds = %g, want %g", j, block, blockWant)
			}
			offset += job.Cube.NumProcs()
		}
		// Identity: one unlabeled job federates to itself.
		solo, err := trace.Federate([]trace.JobCube{{Cube: jobs[0].Cube.Clone()}})
		if err != nil {
			t.Fatal(err)
		}
		want := jobs[0].Cube
		if jobs[0].Label != "" {
			// Region names survive unlabeled; only compare the numbers.
			if solo.NumProcs() != want.NumProcs() ||
				math.Abs(solo.RegionsTotal()-want.RegionsTotal()) > tol ||
				math.Abs(solo.ProgramTime()-want.ProgramTime()) > tol {
				t.Fatal("single-job federation changed totals")
			}
		} else if !solo.EqualWithin(want, 0) {
			t.Fatal("single-job federation is not the identity")
		}
	})
}
