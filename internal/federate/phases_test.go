package federate

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"loadimb/internal/monitor"
	"loadimb/internal/temporal"
	"loadimb/internal/tracefmt"
)

// phasesDoc mirrors the /phases.json payload.
type phasesDoc struct {
	Window  float64                 `json:"window"`
	Current *temporal.PhaseSummary  `json:"current"`
	Changes int                     `json:"changes"`
	Phases  []temporal.PhaseSummary `json:"phases"`
}

// TestFederatedPhasesAgreeWithLivePath extends the federation agreement
// property to phase detection: the phases the federator serves over the
// merged window series must equal what one live collector folding every
// event (ranks offset per job) detects — the merge preserves busy
// vectors bit for bit, and the streaming segmenter equals the offline
// one, so the whole chain is exact.
func TestFederatedPhasesAgreeWithLivePath(t *testing.T) {
	const window = 0.5
	jobs := []jobSpec{
		{name: "jobA", procs: 4, events: jobEvents(4, 0.5)},
		{name: "jobB", procs: 3, events: jobEvents(3, 1.25)},
		{name: "jobC", procs: 5, events: jobEvents(5, 0)},
	}
	var endpoints []Endpoint
	for _, job := range jobs {
		srv := startWindowedEndpoint(t, job, window)
		endpoints = append(endpoints, Endpoint{Name: job.name, URL: srv.URL})
	}
	f, err := New(Options{Endpoints: endpoints, Client: testClient})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	fedSrv := httptest.NewServer(Handler(f))
	defer fedSrv.Close()

	var got phasesDoc
	getJSON(t, fedSrv.URL+"/phases.json", &got)
	if got.Window != window {
		t.Fatalf("federated window width = %g, want %g", got.Window, window)
	}
	if len(got.Phases) == 0 {
		t.Fatal("no federated phases")
	}

	oracle := monitor.NewCollector(monitor.Options{Window: window})
	offset := 0
	for _, job := range jobs {
		for _, e := range job.events {
			e.Rank += offset
			oracle.Record(e)
		}
		offset += job.procs
	}
	want := oracle.Snapshot().Phases

	gotJSON, err := json.Marshal(got.Phases)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("federated phases diverge from the live path.\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
	}
}

// TestFederatedOverlongWindowsDegradeTimeline drives the Merge
// inconsistency error through the scrape path: an endpoint whose window
// series reports busy time on more ranks than its cube declares used to
// have that load silently clipped; now the merge fails and the federated
// timeline (and phases) degrade while the cube view stays correct.
func TestFederatedOverlongWindowsDegradeTimeline(t *testing.T) {
	good := jobSpec{name: "good", procs: 2, events: jobEvents(2, 0.5)}
	goodSrv := startWindowedEndpoint(t, good, 0.5)

	// The bad endpoint's cube declares 2 processors but its window series
	// carries nonzero busy time on a third rank.
	bad := monitor.NewCollector(monitor.Options{Window: 0.5})
	for _, e := range jobEvents(2, 0.3) {
		bad.Record(e)
	}
	badSnap := bad.Snapshot()
	badSeries := *badSnap.Series
	badSeries.Windows = append([]temporal.WindowVector(nil), badSeries.Windows...)
	w0 := badSeries.Windows[0]
	w0.ProcSeconds = append(append([]float64(nil), w0.ProcSeconds...), 0.25)
	badSeries.Windows[0] = w0
	mux := http.NewServeMux()
	mux.HandleFunc("/cube.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tracefmt.WriteCubeJSON(w, badSnap.Cube)
	})
	mux.HandleFunc("/windows.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&badSeries)
	})
	badSrv := httptest.NewServer(mux)
	t.Cleanup(badSrv.Close)

	var logged []string
	f, err := New(Options{
		Endpoints: []Endpoint{
			{Name: "good", URL: goodSrv.URL},
			{Name: "bad", URL: badSrv.URL},
		},
		Client: testClient,
		Logf:   func(format string, args ...any) { logged = append(logged, format) },
	})
	if err != nil {
		t.Fatal(err)
	}
	f.ScrapeAll(context.Background())
	snap := f.Snapshot()
	if snap.Cube == nil {
		t.Fatal("federated cube missing: the merge error must not touch the cube view")
	}
	if snap.Series != nil || snap.Windows != nil || snap.Phases != nil {
		t.Errorf("inconsistent window series still produced a timeline: %+v", snap.Windows)
	}
	found := false
	for _, l := range logged {
		if l == "federate: merging window series: %v" {
			found = true
		}
	}
	if !found {
		t.Errorf("merge inconsistency was not logged: %q", logged)
	}
}
