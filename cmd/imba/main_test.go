package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loadimb/internal/core"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func paperAnalysis(t *testing.T) *core.Analysis {
	t.Helper()
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLoadCube(t *testing.T) {
	if _, err := loadCube("x.limb", true, nil); err == nil {
		t.Error("both -in and -paper should fail")
	}
	if _, err := loadCube("", false, nil); err == nil {
		t.Error("neither -in nor -paper should fail")
	}
	cube, err := loadCube("", true, nil)
	if err != nil || cube.NumProcs() != 16 {
		t.Fatalf("paper cube: %v, %v", cube, err)
	}
	path := filepath.Join(t.TempDir(), "c.limb")
	if err := tracefmt.SaveCube(path, cube); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadCube(path, false, nil)
	if err != nil || !cube.EqualWithin(loaded, 0) {
		t.Errorf("file cube: %v", err)
	}
	if _, err := loadCube(filepath.Join(t.TempDir(), "missing.limb"), false, nil); err == nil {
		t.Error("missing file should fail")
	}
}

func TestPrintTables(t *testing.T) {
	a := paperAnalysis(t)
	var sb strings.Builder
	if err := printTables(&sb, a, "all"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("all-tables output missing %q", want)
		}
	}
	sb.Reset()
	if err := printTables(&sb, a, "2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.30571") {
		t.Error("table 2 missing the loop 5 sync index")
	}
	if err := printTables(&sb, a, "9"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestPrintClusters(t *testing.T) {
	a := paperAnalysis(t)
	var sb strings.Builder
	printClusters(&sb, a)
	out := sb.String()
	if !strings.Contains(out, "loop 1, loop 2") {
		t.Errorf("clusters output wrong:\n%s", out)
	}
	// No clusters case.
	a.Clusters = nil
	sb.Reset()
	printClusters(&sb, a)
	if !strings.Contains(sb.String(), "skipped") {
		t.Errorf("empty clusters output: %q", sb.String())
	}
}

func TestPrintView(t *testing.T) {
	a := paperAnalysis(t)
	var sb strings.Builder
	if err := printView(&sb, a, "processor"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "most frequently imbalanced") || !strings.Contains(out, "*") {
		t.Errorf("processor view output wrong:\n%s", out)
	}
	// Loop 1 performs no point-to-point, but every processor has some
	// time in it, so all 7 rows render with 16 columns each.
	if strings.Count(out, "\n") < 8 {
		t.Errorf("too few rows:\n%s", out)
	}
	if err := printView(&sb, a, "bogus"); err == nil {
		t.Error("unknown view should fail")
	}
}

func TestLoadCubeErrorTypes(t *testing.T) {
	// A corrupt file surfaces a tracefmt error, not a panic.
	path := filepath.Join(t.TempDir(), "bad.limb")
	if err := tracefmt.SaveCube(path, mustPaperCube(t)); err != nil {
		t.Fatal(err)
	}
	// Truncate it.
	if err := truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	_, err := loadCube(path, false, nil)
	if err == nil || !errors.Is(err, tracefmt.ErrCorrupt) {
		t.Errorf("corrupt err = %v", err)
	}
}

func mustPaperCube(t *testing.T) *trace.Cube {
	t.Helper()
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

func truncate(path string, n int64) error {
	return os.Truncate(path, n)
}

func TestParseCriterion(t *testing.T) {
	good := map[string]string{
		"max":           "max",
		"top3":          "top3",
		"p90":           "p90",
		"zscore":        "zscore(2)",
		"threshold:0.1": "threshold(0.1)",
	}
	for spec, wantName := range good {
		c, err := parseCriterion(spec)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		if c.Name() != wantName {
			t.Errorf("%q: name = %q, want %q", spec, c.Name(), wantName)
		}
	}
	for _, bad := range []string{"", "topx", "top0", "pxx", "threshold:abc", "bogus"} {
		if _, err := parseCriterion(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestPrintCandidates(t *testing.T) {
	a := paperAnalysis(t)
	var sb strings.Builder
	if err := printCandidates(&sb, a, "top2"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1. loop 1") || !strings.Contains(out, "2. loop 4") {
		t.Errorf("candidates output wrong:\n%s", out)
	}
	sb.Reset()
	if err := printCandidates(&sb, a, "threshold:99"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "flags no region") {
		t.Errorf("empty candidates output: %q", sb.String())
	}
	if err := printCandidates(&sb, a, "bogus"); err == nil {
		t.Error("bad criterion should fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-paper", "-table", "all", "-cluster", "-heatmap", "-candidates", "top2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "Table 4", "cluster 1", "heat map", "1. loop 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q", want)
		}
	}
	sb.Reset()
	if err := run([]string{"-paper", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "section,region,activity,value") {
		t.Error("csv mode wrong")
	}
	sb.Reset()
	if err := run([]string{"-paper"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tuning candidate") {
		t.Error("default summary missing")
	}
	if err := run([]string{"-paper", "-index", "bogus"}, &sb); err == nil {
		t.Error("unknown index should fail")
	}
	if err := run([]string{"-nosuchflag"}, &sb); err == nil {
		t.Error("bad flag should fail")
	}
	// Alternative index end to end.
	sb.Reset()
	if err := run([]string{"-paper", "-table", "2", "-index", "gini"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 2") {
		t.Error("gini table missing")
	}
}

func TestRunMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-paper", "-markdown"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "### Table 4") {
		t.Errorf("markdown output missing:\n%s", sb.String())
	}
}

func TestRunTemporalPhases(t *testing.T) {
	// Balanced stretch then a rank-0-only tail: two phases with clearly
	// different per-phase ID_P.
	var lg trace.Log
	for r := 0; r < 4; r++ {
		if err := lg.Append(trace.Event{Rank: r, Region: "bulk", Activity: "computation", Start: 0, End: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Append(trace.Event{Rank: 0, Region: "tail", Activity: "computation", Start: 5, End: 10}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.events")
	if err := tracefmt.SaveEvents(path, &lg); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := run([]string{"-events", path, "-window", "1", "-phases"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"imbalance trajectory", "phases (penalized change-point", "quiet", "hot", "ID_P"} {
		if !strings.Contains(out, want) {
			t.Errorf("temporal output missing %q:\n%s", want, out)
		}
	}

	// The activity filter restricts the trajectory.
	sb.Reset()
	if err := run([]string{"-events", path, "-window", "1", "-activity", "computation"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "computation):") {
		t.Errorf("filtered trajectory header missing:\n%s", sb.String())
	}

	// Per-activity segmentation: each activity gets its own phase list.
	// "computation" runs throughout while "tailwork" exists only in the
	// tail, so their segmentations differ.
	sb.Reset()
	if err := run([]string{"-events", path, "-window", "1", "-per-activity"}, &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	for _, want := range []string{"per-activity segmentation", "computation:", "phase 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("per-activity output missing %q:\n%s", want, out)
		}
	}

	// Flag validation.
	if err := run([]string{"-window", "1"}, &sb); err == nil {
		t.Error("-window without -events should fail")
	}
	if err := run([]string{"-events", path, "-phases"}, &sb); err == nil {
		t.Error("-phases without -window should fail")
	}
	if err := run([]string{"-events", path, "-per-activity"}, &sb); err == nil {
		t.Error("-per-activity without -window should fail")
	}
}

func TestRunDiagnose(t *testing.T) {
	// Four ranks, one of which (rank 2) does triple computation in the
	// solve region: the diagnosis must name it and the dominant activity.
	var lg trace.Log
	for r := 0; r < 4; r++ {
		end := 4.0
		if r == 2 {
			end = 12.0
		}
		if err := lg.Append(trace.Event{Rank: r, Region: "solve", Activity: "computation", Start: 0, End: end}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "run.events")
	if err := tracefmt.SaveEvents(path, &lg); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := run([]string{"-events", path, "-window", "1", "-diagnose"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"automatic diagnosis", "cohort", "rank 2", "computation"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnose output missing %q:\n%s", want, out)
		}
	}

	// JSON mode emits the raw report document.
	sb.Reset()
	if err := run([]string{"-events", path, "-window", "1", "-diagnose", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"findings"`) || !strings.Contains(sb.String(), `"rank": 2`) {
		t.Errorf("diagnose -json output wrong:\n%s", sb.String())
	}

	// Flag validation.
	if err := run([]string{"-events", path, "-diagnose"}, &sb); err == nil {
		t.Error("-diagnose without -window should fail")
	}
	if err := run([]string{"-diagnose", "-window", "1"}, &sb); err == nil {
		t.Error("-diagnose without -events should fail")
	}
}

func TestRankRanges(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, "[]"},
		{[]int{3}, "[3]"},
		{[]int{0, 1, 2, 3}, "[0-3]"},
		{[]int{0, 1, 2, 4, 6, 7}, "[0-2 4 6-7]"},
	}
	for _, c := range cases {
		if got := rankRanges(c.in); got != c.want {
			t.Errorf("rankRanges(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
