// Command imba analyzes a measurement cube with the load-imbalance
// methodology: it prints the paper's Tables 1-4, the Section 4 style
// summary, the region clustering and the processor view.
//
// Usage:
//
//	imba -paper -table all           # analyze the embedded case study
//	imba -in run.limb -summary       # analyze a binary tracefile
//	imba -in run.json -table 4 -index mad
//	imba -in run.limb -csv > out.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"loadimb/internal/core"
	"loadimb/internal/report"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imba: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("imba", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input tracefile (.limb binary, .json or .csv)")
		usePaper  = fs.Bool("paper", false, "analyze the embedded paper case study instead of a file")
		table     = fs.String("table", "", "print table 1, 2, 3, 4 or all")
		summary   = fs.Bool("summary", false, "print the findings summary")
		cluster   = fs.Bool("cluster", false, "print the region clustering")
		view      = fs.String("view", "", "print a view: processor")
		csvOut    = fs.Bool("csv", false, "print the full analysis as CSV")
		mdOut     = fs.Bool("markdown", false, "print Tables 1-4 as Markdown")
		heat      = fs.Bool("heatmap", false, "print the dispersion heat map")
		drill     = fs.String("drill", "", "drill into one region by name")
		criterion = fs.String("candidates", "", "rank tuning candidates: max, top<K>, p<Q>, zscore or threshold:<T>")
		indexName = fs.String("index", "euclidean", "index of dispersion (euclidean, variance, stddev, cov, mad, max, range, gini)")
		clusterK  = fs.Int("k", 2, "number of region clusters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cube, err := loadCube(*in, *usePaper)
	if err != nil {
		return err
	}
	idx, ok := stats.IndexByName(*indexName)
	if !ok {
		return fmt.Errorf("unknown index %q", *indexName)
	}
	analysis, err := core.Analyze(cube, core.AnalyzeOptions{
		Options:  core.Options{Index: idx},
		ClusterK: *clusterK,
	})
	if err != nil {
		return err
	}

	if *csvOut {
		fmt.Fprint(stdout, report.CSV(analysis))
		return nil
	}
	if *mdOut {
		fmt.Fprint(stdout, report.Markdown(analysis))
		return nil
	}
	printed := false
	if *table != "" {
		if err := printTables(stdout, analysis, *table); err != nil {
			return err
		}
		printed = true
	}
	if *cluster {
		printClusters(stdout, analysis)
		printed = true
	}
	if *view != "" {
		if err := printView(stdout, analysis, *view); err != nil {
			return err
		}
		printed = true
	}
	if *heat {
		fmt.Fprint(stdout, report.Heatmap(analysis))
		printed = true
	}
	if *drill != "" {
		if err := printDrill(stdout, analysis, cube, *drill); err != nil {
			return err
		}
		printed = true
	}
	if *criterion != "" {
		if err := printCandidates(stdout, analysis, *criterion); err != nil {
			return err
		}
		printed = true
	}
	if *summary || !printed {
		fmt.Fprint(stdout, report.Summary(analysis))
	}
	return nil
}

func loadCube(path string, usePaper bool) (*trace.Cube, error) {
	switch {
	case usePaper && path != "":
		return nil, fmt.Errorf("use either -in or -paper, not both")
	case usePaper:
		return workload.ReconstructCube()
	case path == "":
		return nil, fmt.Errorf("no input: pass -in <tracefile> or -paper")
	}
	return tracefmt.OpenCube(path)
}

func printTables(w io.Writer, a *core.Analysis, which string) error {
	tables := map[string]func() string{
		"1": func() string { return report.Table1(a.Profile) },
		"2": func() string { return report.Table2(a) },
		"3": func() string { return report.Table3(a) },
		"4": func() string { return report.Table4(a) },
	}
	if which == "all" {
		for _, k := range []string{"1", "2", "3", "4"} {
			fmt.Fprintln(w, tables[k]())
		}
		return nil
	}
	f, ok := tables[which]
	if !ok {
		return fmt.Errorf("unknown table %q (want 1, 2, 3, 4 or all)", which)
	}
	fmt.Fprintln(w, f())
	return nil
}

func printClusters(w io.Writer, a *core.Analysis) {
	if len(a.Clusters) == 0 {
		fmt.Fprintln(w, "clustering skipped (too few regions)")
		return
	}
	fmt.Fprintln(w, "region clusters (k-means on activity-time vectors):")
	for c, group := range a.Clusters {
		names := make([]string, len(group))
		for i, g := range group {
			names[i] = a.Profile.Regions[g].Region
		}
		fmt.Fprintf(w, "  cluster %d: %s\n", c+1, strings.Join(names, ", "))
	}
}

func parseCriterion(spec string) (core.Criterion, error) {
	switch {
	case spec == "max":
		return core.MaxCriterion{}, nil
	case spec == "zscore":
		return core.ZScoreCriterion{}, nil
	case strings.HasPrefix(spec, "top"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "top"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad top-K criterion %q", spec)
		}
		return core.TopKCriterion{K: k}, nil
	case strings.HasPrefix(spec, "p"):
		q, err := strconv.ParseFloat(strings.TrimPrefix(spec, "p"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad percentile criterion %q", spec)
		}
		return core.PercentileCriterion{Q: q}, nil
	case strings.HasPrefix(spec, "threshold:"):
		v, err := strconv.ParseFloat(strings.TrimPrefix(spec, "threshold:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold criterion %q", spec)
		}
		return core.ThresholdCriterion{T: v}, nil
	}
	return nil, fmt.Errorf("unknown criterion %q (want max, top<K>, p<Q>, zscore or threshold:<T>)", spec)
}

func printCandidates(w io.Writer, a *core.Analysis, spec string) error {
	c, err := parseCriterion(spec)
	if err != nil {
		return err
	}
	cands := a.TuningCandidates(c)
	if len(cands) == 0 {
		fmt.Fprintf(w, "criterion %s flags no region\n", c.Name())
		return nil
	}
	fmt.Fprintf(w, "tuning candidates by SID_C (criterion %s):\n", c.Name())
	for rank, cand := range cands {
		fmt.Fprintf(w, "  %d. %-10s SID_C %.5f\n", rank+1, a.Regions[cand.Pos].Name, cand.Value)
	}
	return nil
}

func printDrill(w io.Writer, a *core.Analysis, cube *trace.Cube, region string) error {
	i := cube.RegionIndex(region)
	if i < 0 {
		return fmt.Errorf("unknown region %q (have %v)", region, cube.Regions())
	}
	d, err := a.DrillDown(cube, i)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %.3f s (%.1f%% of the program)\n", d.Name, d.Time, d.Share*100)
	fmt.Fprintf(w, "  activities by contribution to ID_C (ID with 95%% bootstrap interval):\n")
	for _, ad := range d.Activities {
		if !ad.Defined {
			fmt.Fprintf(w, "    %-16s -\n", ad.Name)
			continue
		}
		times, err := cube.ProcTimes(i, ad.Activity)
		if err != nil {
			return err
		}
		ci, err := stats.BootstrapCI(stats.Euclidean, times, 400, 0.95, 11)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "    %-16s t=%8.3f s  weight=%5.3f  ID=%8.5f [%7.5f, %7.5f]  contribution=%8.5f\n",
			ad.Name, ad.Time, ad.Weight, ad.ID, ci.Low, ci.High, ad.Contribution)
	}
	fmt.Fprintf(w, "  most dissimilar processors (top 5 by ID_P):\n")
	for k, pd := range d.Processors {
		if k >= 5 {
			break
		}
		mark := ""
		if pd.Slowest {
			mark = "  <- slowest"
		}
		fmt.Fprintf(w, "    proc %2d: ID_P=%8.5f  time=%8.3f s%s\n", pd.Proc, pd.ID, pd.Time, mark)
	}
	return nil
}

func printView(w io.Writer, a *core.Analysis, name string) error {
	if name != "processor" {
		return fmt.Errorf("unknown view %q (tables 3 and 4 are the activity and region views)", name)
	}
	v := a.Processors
	fmt.Fprintln(w, "processor view (ID_P per region; most imbalanced processor per region marked *):")
	for i := range v.ByRegion {
		best, bestVal := -1, 0.0
		for p, d := range v.ByRegion[i] {
			if d.Defined && (best == -1 || d.ID > bestVal) {
				best, bestVal = p, d.ID
			}
		}
		fmt.Fprintf(w, "  %-10s", a.Profile.Regions[i].Region)
		for p, d := range v.ByRegion[i] {
			if !d.Defined {
				fmt.Fprintf(w, "      -  ")
				continue
			}
			mark := " "
			if p == best {
				mark = "*"
			}
			fmt.Fprintf(w, " %7.5f%s", d.ID, mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "most frequently imbalanced: processor %d (on %d regions)\n",
		v.MostFrequentlyImbalanced, len(v.Summaries[v.MostFrequentlyImbalanced].MostImbalancedOn))
	fmt.Fprintf(w, "imbalanced for the longest time: processor %d (%.3f s)\n",
		v.LongestImbalanced, v.Summaries[v.LongestImbalanced].ImbalancedTime)
	return nil
}
