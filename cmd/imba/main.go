// Command imba analyzes a measurement cube with the load-imbalance
// methodology: it prints the paper's Tables 1-4, the Section 4 style
// summary, the region clustering and the processor view.
//
// Usage:
//
//	imba -paper -table all           # analyze the embedded case study
//	imba -in run.limb -summary       # analyze a binary tracefile
//	imba -in run.json -table 4 -index mad
//	imba -in run.limb -csv > out.csv
//
// Given an event trace instead of a cube, it can also analyze the run's
// temporal structure: -window prints the windowed imbalance trajectory
// (the same numbers a live imbamon serves at /timeline.json), and
// -phases segments the trajectory into phases via penalized change-point
// detection and runs the full index set on each phase:
//
//	imba -events run.events -window 0.5
//	imba -events run.events -window 0.5 -activity computation -phases
//	imba -events run.events -window 0.5 -per-activity
//
// -diagnose runs the automatic performance diagnosis on the trace: ranks
// are fingerprinted per detected phase, clustered into cohorts, and the
// diverged ones reported with the activity or region the divergence went
// to — the same report a live imbamon serves at /diagnose.json. -json
// prints the raw report document instead of text:
//
//	imba -events run.events -window 0.5 -diagnose
//	imba -events run.events -window 0.5 -diagnose -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"loadimb/internal/core"
	"loadimb/internal/diagnose"
	"loadimb/internal/report"
	"loadimb/internal/stats"
	"loadimb/internal/temporal"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imba: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("imba", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input tracefile (.limb binary, .json or .csv)")
		usePaper  = fs.Bool("paper", false, "analyze the embedded paper case study instead of a file")
		table     = fs.String("table", "", "print table 1, 2, 3, 4 or all")
		summary   = fs.Bool("summary", false, "print the findings summary")
		cluster   = fs.Bool("cluster", false, "print the region clustering")
		view      = fs.String("view", "", "print a view: processor")
		csvOut    = fs.Bool("csv", false, "print the full analysis as CSV")
		mdOut     = fs.Bool("markdown", false, "print Tables 1-4 as Markdown")
		heat      = fs.Bool("heatmap", false, "print the dispersion heat map")
		drill     = fs.String("drill", "", "drill into one region by name")
		criterion = fs.String("candidates", "", "rank tuning candidates: max, top<K>, p<Q>, zscore or threshold:<T>")
		indexName = fs.String("index", "euclidean", "index of dispersion (euclidean, variance, stddev, cov, mad, max, range, gini)")
		clusterK  = fs.Int("k", 2, "number of region clusters")
		eventsIn  = fs.String("events", "", "input event trace (JSON lines, as written by cfdsim -events)")
		window    = fs.Float64("window", 0, "temporal window width in seconds (requires -events)")
		windowCap = fs.Int("window-cap", 0, "max full-resolution windows retained; older ones decimate into a coarse tail (0 = unbounded, the offline default)")
		phases    = fs.Bool("phases", false, "segment the trajectory into phases and analyze each (requires -window)")
		perAct    = fs.Bool("per-activity", false, "segment each activity's own trajectory (requires -window)")
		penalty   = fs.Float64("penalty", 0, "change-point penalty for -phases (0 = automatic)")
		activity  = fs.String("activity", "", "comma-separated activities the trajectory is restricted to (e.g. computation)")
		diag      = fs.Bool("diagnose", false, "run the automatic diagnosis: cluster ranks per phase and report diverged ones (requires -events and -window)")
		jsonOut   = fs.Bool("json", false, "with -diagnose, print the raw report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*window > 0 || *phases || *perAct || *diag) && *eventsIn == "" {
		return fmt.Errorf("-window and -phases need an event trace: pass -events <file> (cubes carry no time structure)")
	}
	if *phases && *window <= 0 {
		return fmt.Errorf("-phases needs -window <dt> to define the trajectory")
	}
	if *perAct && *window <= 0 {
		return fmt.Errorf("-per-activity needs -window <dt> to define the trajectories")
	}
	if *diag && *window <= 0 {
		return fmt.Errorf("-diagnose needs -window <dt> to define the fingerprint windows")
	}

	var lg *trace.Log
	if *eventsIn != "" {
		var err error
		if lg, err = tracefmt.OpenEvents(*eventsIn); err != nil {
			return err
		}
	}
	if *diag {
		// Diagnosis is a dedicated mode: it works on the event trace
		// alone and prints exactly what /diagnose.json serves.
		return printDiagnose(stdout, lg, *window, *penalty, *jsonOut)
	}
	cube, err := loadCube(*in, *usePaper, lg)
	if err != nil {
		return err
	}
	idx, ok := stats.IndexByName(*indexName)
	if !ok {
		return fmt.Errorf("unknown index %q", *indexName)
	}
	analysis, err := core.Analyze(cube, core.AnalyzeOptions{
		Options:  core.Options{Index: idx},
		ClusterK: *clusterK,
	})
	if err != nil {
		return err
	}

	if *csvOut {
		fmt.Fprint(stdout, report.CSV(analysis))
		return nil
	}
	if *mdOut {
		fmt.Fprint(stdout, report.Markdown(analysis))
		return nil
	}
	printed := false
	if *window > 0 {
		if err := printTemporal(stdout, lg, cube, temporalSpec{
			window:    *window,
			windowCap: *windowCap,
			phases:    *phases,
			perAct:    *perAct,
			penalty:   *penalty,
			activity:  *activity,
			opts: core.AnalyzeOptions{
				Options:  core.Options{Index: idx},
				ClusterK: *clusterK,
			},
		}); err != nil {
			return err
		}
		printed = true
	}
	if *table != "" {
		if err := printTables(stdout, analysis, *table); err != nil {
			return err
		}
		printed = true
	}
	if *cluster {
		printClusters(stdout, analysis)
		printed = true
	}
	if *view != "" {
		if err := printView(stdout, analysis, *view); err != nil {
			return err
		}
		printed = true
	}
	if *heat {
		fmt.Fprint(stdout, report.Heatmap(analysis))
		printed = true
	}
	if *drill != "" {
		if err := printDrill(stdout, analysis, cube, *drill); err != nil {
			return err
		}
		printed = true
	}
	if *criterion != "" {
		if err := printCandidates(stdout, analysis, *criterion); err != nil {
			return err
		}
		printed = true
	}
	if *summary || !printed {
		fmt.Fprint(stdout, report.Summary(analysis))
	}
	return nil
}

func loadCube(path string, usePaper bool, lg *trace.Log) (*trace.Cube, error) {
	switch {
	case usePaper && path != "":
		return nil, fmt.Errorf("use either -in or -paper, not both")
	case usePaper:
		return workload.ReconstructCube()
	case path != "":
		return tracefmt.OpenCube(path)
	case lg != nil:
		// An event trace alone is a full input: aggregate it exactly as
		// a live collector would have.
		return lg.Aggregate(nil, nil)
	}
	return nil, fmt.Errorf("no input: pass -in <tracefile>, -events <file> or -paper")
}

// temporalSpec bundles the temporal-analysis flags.
type temporalSpec struct {
	window    float64
	windowCap int
	phases    bool
	perAct    bool
	penalty   float64
	activity  string
	opts      core.AnalyzeOptions
}

// printTemporal prints the windowed imbalance trajectory and, when
// requested, the phase segmentation with the full index set per phase.
func printTemporal(w io.Writer, lg *trace.Log, cube *trace.Cube, spec temporalSpec) error {
	opts := temporal.Options{
		Window:          spec.window,
		WindowCap:       spec.windowCap,
		TrackActivities: true,
		PerActivity:     spec.perAct,
	}
	if spec.activity != "" {
		for _, name := range strings.Split(spec.activity, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Activities = append(opts.Activities, name)
			}
		}
	}
	ser, err := temporal.FoldLog(lg, opts)
	if err != nil {
		return err
	}
	traj := ser.Stats()
	scope := "all activities"
	if len(opts.Activities) > 0 {
		scope = strings.Join(opts.Activities, "+")
	}
	fmt.Fprintf(w, "imbalance trajectory (window %g s, %d procs, %s):\n", spec.window, ser.Procs, scope)
	fmt.Fprintf(w, "  %6s %9s %9s %7s %10s %9s %8s  %s\n",
		"window", "start", "end", "events", "busy", "ID", "gini", "dominant")
	printTraj := func(stats []temporal.WindowStat) {
		for _, ws := range stats {
			id := "      -"
			if ws.ID != nil {
				id = fmt.Sprintf("%9.5f", *ws.ID)
			}
			fmt.Fprintf(w, "  %6d %9.3f %9.3f %7d %10.4f %s %8.5f  %s\n",
				ws.Index, ws.Start, ws.End, ws.Events, ws.Busy, id, ws.Gini, ws.Dominant)
		}
	}
	if coarse := ser.CoarseStats(); len(coarse) > 0 {
		// A bounded fold decimated the early run: print the coarse tail
		// first (it covers the older time range), then mark the resolution
		// break before the full-resolution ring.
		fmt.Fprintf(w, "  decimated history (coarse window %g s, cap %d):\n", ser.CoarseWindow, spec.windowCap)
		printTraj(coarse)
		fmt.Fprintf(w, "  --- full resolution from window %d ---\n", ser.RingStart)
	}
	printTraj(traj)
	if spec.perAct {
		printPerActivity(w, ser, spec.penalty)
	}
	if !spec.phases {
		return nil
	}

	phs := temporal.Segment(traj, spec.penalty)
	reports, err := temporal.AnalyzePhases(lg, phs, spec.opts)
	if err != nil {
		return err
	}
	// The whole-run processor imbalance the per-phase values are compared
	// against: what the run-wide index averages away.
	wholeTotals := make([]float64, cube.NumProcs())
	for p := range wholeTotals {
		t, err := cube.ProcTotalTime(p)
		if err != nil {
			return err
		}
		wholeTotals[p] = t
	}
	whole := "-"
	if id, err := stats.EuclideanFromBalance(wholeTotals); err == nil {
		whole = fmt.Sprintf("%.5f", id)
	}
	fmt.Fprintf(w, "\nphases (penalized change-point segmentation; whole-run ID_P %s):\n", whole)
	for k, rep := range reports {
		fmt.Fprintf(w, "  phase %d [%.3f, %.3f) %-5s windows=%d mean window ID=%.5f",
			k+1, rep.Start, rep.End, rep.Label, rep.Windows, rep.MeanID)
		if rep.IDP != nil {
			fmt.Fprintf(w, " ID_P=%.5f gini=%.5f", *rep.IDP, rep.Gini)
		}
		fmt.Fprintln(w)
		if rep.Analysis == nil {
			continue
		}
		// The phase's dominant tuning candidate: the region contributing
		// the most absolute dispersion within the phase.
		best, bestVal := -1, 0.0
		for i, reg := range rep.Analysis.Regions {
			if reg.Defined && (best == -1 || reg.SID > bestVal) {
				best, bestVal = i, reg.SID
			}
		}
		if best >= 0 {
			fmt.Fprintf(w, "           top region by SID_C: %s (%.5f)\n",
				rep.Analysis.Regions[best].Name, bestVal)
		}
	}
	return nil
}

// printPerActivity segments each activity's own trajectory — a phase
// boundary in the aggregate trajectory often belongs to a single
// activity, and an activity can change phase without moving the
// aggregate at all.
func printPerActivity(w io.Writer, ser *temporal.Series, penalty float64) {
	names := ser.ActivityNames()
	if len(names) == 0 {
		fmt.Fprintln(w, "\nper-activity segmentation: the series carries no per-activity vectors")
		return
	}
	fmt.Fprintln(w, "\nper-activity segmentation (each activity's own window trajectory):")
	for _, name := range names {
		phs := temporal.Segment(ser.ActivitySeries(name).Stats(), penalty)
		fmt.Fprintf(w, "  %s: %d phases\n", name, len(phs))
		for k, ph := range phs {
			fmt.Fprintf(w, "    phase %d [%.3f, %.3f) %-5s windows %d..%d mean window ID=%.5f\n",
				k+1, ph.Start, ph.End, ph.Label, ph.FirstWindow, ph.LastWindow, ph.MeanID)
		}
	}
}

// printDiagnose runs the offline automatic diagnosis: the same fold
// (per-activity and per-region vectors), segmentation and clustering the
// live /diagnose.json endpoint performs, on the saved trace.
func printDiagnose(w io.Writer, lg *trace.Log, window, penalty float64, asJSON bool) error {
	ser, err := temporal.FoldLog(lg, temporal.Options{
		Window: window, PerActivity: true, PerRegion: true,
	})
	if err != nil {
		return err
	}
	rep := diagnose.Diagnose(ser, temporal.Segment(ser.Stats(), penalty), diagnose.Options{})
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "automatic diagnosis (window %g s, %d procs, %d fingerprint dimensions):\n",
		rep.Window, rep.Procs, len(rep.Dimensions))
	for _, pd := range rep.Phases {
		fmt.Fprintf(w, "  phase %d [%.3f, %.3f) %-5s cohorts=%d silhouette=%.3f scale=%.2g\n",
			pd.Phase, pd.Start, pd.End, pd.Label, len(pd.Cohorts), pd.Silhouette, pd.Scale)
		for c, co := range pd.Cohorts {
			fmt.Fprintf(w, "    cohort %d: %d ranks %s\n", c+1, len(co.Ranks), rankRanges(co.Ranks))
		}
	}
	if len(rep.Findings) == 0 {
		fmt.Fprintln(w, "no diverged ranks: every rank behaves like its cohort")
		return nil
	}
	fmt.Fprintf(w, "findings (%d diverged rank-phases, by score):\n", len(rep.Findings))
	for k, f := range rep.Findings {
		fmt.Fprintf(w, "  %d. %s\n", k+1, f.Summary)
		for _, c := range f.Dominant {
			dim := c.Dimension
			if c.Kind == diagnose.KindRegion {
				dim = fmt.Sprintf("region %q", c.Dimension)
			}
			pct := ""
			if c.Percent != nil {
				pct = fmt.Sprintf(" (%+.0f%% of cohort)", *c.Percent)
			}
			fmt.Fprintf(w, "     %-24s Δ%+.4f util%s\n", dim, c.Delta, pct)
		}
	}
	return nil
}

// rankRanges renders a sorted rank list compactly: [0-4 6 9-11].
func rankRanges(ranks []int) string {
	if len(ranks) == 0 {
		return "[]"
	}
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < len(ranks); {
		j := i
		for j+1 < len(ranks) && ranks[j+1] == ranks[j]+1 {
			j++
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		if j > i {
			fmt.Fprintf(&sb, "%d-%d", ranks[i], ranks[j])
		} else {
			fmt.Fprintf(&sb, "%d", ranks[i])
		}
		i = j + 1
	}
	sb.WriteByte(']')
	return sb.String()
}

func printTables(w io.Writer, a *core.Analysis, which string) error {
	tables := map[string]func() string{
		"1": func() string { return report.Table1(a.Profile) },
		"2": func() string { return report.Table2(a) },
		"3": func() string { return report.Table3(a) },
		"4": func() string { return report.Table4(a) },
	}
	if which == "all" {
		for _, k := range []string{"1", "2", "3", "4"} {
			fmt.Fprintln(w, tables[k]())
		}
		return nil
	}
	f, ok := tables[which]
	if !ok {
		return fmt.Errorf("unknown table %q (want 1, 2, 3, 4 or all)", which)
	}
	fmt.Fprintln(w, f())
	return nil
}

func printClusters(w io.Writer, a *core.Analysis) {
	if len(a.Clusters) == 0 {
		fmt.Fprintln(w, "clustering skipped (too few regions)")
		return
	}
	fmt.Fprintln(w, "region clusters (k-means on activity-time vectors):")
	for c, group := range a.Clusters {
		names := make([]string, len(group))
		for i, g := range group {
			names[i] = a.Profile.Regions[g].Region
		}
		fmt.Fprintf(w, "  cluster %d: %s\n", c+1, strings.Join(names, ", "))
	}
}

func parseCriterion(spec string) (core.Criterion, error) {
	switch {
	case spec == "max":
		return core.MaxCriterion{}, nil
	case spec == "zscore":
		return core.ZScoreCriterion{}, nil
	case strings.HasPrefix(spec, "top"):
		k, err := strconv.Atoi(strings.TrimPrefix(spec, "top"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad top-K criterion %q", spec)
		}
		return core.TopKCriterion{K: k}, nil
	case strings.HasPrefix(spec, "p"):
		q, err := strconv.ParseFloat(strings.TrimPrefix(spec, "p"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad percentile criterion %q", spec)
		}
		return core.PercentileCriterion{Q: q}, nil
	case strings.HasPrefix(spec, "threshold:"):
		v, err := strconv.ParseFloat(strings.TrimPrefix(spec, "threshold:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold criterion %q", spec)
		}
		return core.ThresholdCriterion{T: v}, nil
	}
	return nil, fmt.Errorf("unknown criterion %q (want max, top<K>, p<Q>, zscore or threshold:<T>)", spec)
}

func printCandidates(w io.Writer, a *core.Analysis, spec string) error {
	c, err := parseCriterion(spec)
	if err != nil {
		return err
	}
	cands := a.TuningCandidates(c)
	if len(cands) == 0 {
		fmt.Fprintf(w, "criterion %s flags no region\n", c.Name())
		return nil
	}
	fmt.Fprintf(w, "tuning candidates by SID_C (criterion %s):\n", c.Name())
	for rank, cand := range cands {
		fmt.Fprintf(w, "  %d. %-10s SID_C %.5f\n", rank+1, a.Regions[cand.Pos].Name, cand.Value)
	}
	return nil
}

func printDrill(w io.Writer, a *core.Analysis, cube *trace.Cube, region string) error {
	i := cube.RegionIndex(region)
	if i < 0 {
		return fmt.Errorf("unknown region %q (have %v)", region, cube.Regions())
	}
	d, err := a.DrillDown(cube, i)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %.3f s (%.1f%% of the program)\n", d.Name, d.Time, d.Share*100)
	fmt.Fprintf(w, "  activities by contribution to ID_C (ID with 95%% bootstrap interval):\n")
	for _, ad := range d.Activities {
		if !ad.Defined {
			fmt.Fprintf(w, "    %-16s -\n", ad.Name)
			continue
		}
		times, err := cube.ProcTimes(i, ad.Activity)
		if err != nil {
			return err
		}
		ci, err := stats.BootstrapCI(stats.Euclidean, times, 400, 0.95, 11)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "    %-16s t=%8.3f s  weight=%5.3f  ID=%8.5f [%7.5f, %7.5f]  contribution=%8.5f\n",
			ad.Name, ad.Time, ad.Weight, ad.ID, ci.Low, ci.High, ad.Contribution)
	}
	fmt.Fprintf(w, "  most dissimilar processors (top 5 by ID_P):\n")
	for k, pd := range d.Processors {
		if k >= 5 {
			break
		}
		mark := ""
		if pd.Slowest {
			mark = "  <- slowest"
		}
		fmt.Fprintf(w, "    proc %2d: ID_P=%8.5f  time=%8.3f s%s\n", pd.Proc, pd.ID, pd.Time, mark)
	}
	return nil
}

func printView(w io.Writer, a *core.Analysis, name string) error {
	if name != "processor" {
		return fmt.Errorf("unknown view %q (tables 3 and 4 are the activity and region views)", name)
	}
	v := a.Processors
	fmt.Fprintln(w, "processor view (ID_P per region; most imbalanced processor per region marked *):")
	for i := range v.ByRegion {
		best, bestVal := -1, 0.0
		for p, d := range v.ByRegion[i] {
			if d.Defined && (best == -1 || d.ID > bestVal) {
				best, bestVal = p, d.ID
			}
		}
		fmt.Fprintf(w, "  %-10s", a.Profile.Regions[i].Region)
		for p, d := range v.ByRegion[i] {
			if !d.Defined {
				fmt.Fprintf(w, "      -  ")
				continue
			}
			mark := " "
			if p == best {
				mark = "*"
			}
			fmt.Fprintf(w, " %7.5f%s", d.ID, mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "most frequently imbalanced: processor %d (on %d regions)\n",
		v.MostFrequentlyImbalanced, len(v.Summaries[v.MostFrequentlyImbalanced].MostImbalancedOn))
	fmt.Fprintf(w, "imbalanced for the longest time: processor %d (%.3f s)\n",
		v.LongestImbalanced, v.Summaries[v.LongestImbalanced].ImbalancedTime)
	return nil
}
