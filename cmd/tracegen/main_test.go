package main

import (
	"path/filepath"
	"strings"
	"testing"

	"loadimb/internal/stats"
	"loadimb/internal/tracefmt"
)

func TestBuildPaper(t *testing.T) {
	cube, err := build(true, 0, 0, 0, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumRegions() != 7 || cube.NumProcs() != 16 {
		t.Errorf("paper cube dims = %d, %d", cube.NumRegions(), cube.NumProcs())
	}
}

func TestBuildProfiles(t *testing.T) {
	for _, profile := range []string{"balanced", "one-hot", "linear", "block", "random"} {
		cube, err := build(false, 4, 2, 16, profile, 0.5, 7)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if cube.NumRegions() != 4 || cube.NumActivities() != 2 || cube.NumProcs() != 16 {
			t.Errorf("%s: dims = %d, %d, %d", profile, cube.NumRegions(), cube.NumActivities(), cube.NumProcs())
		}
		// Dispersion matches the profile intent: balanced is flat,
		// others are spread.
		times, err := cube.ProcTimes(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		id, err := stats.EuclideanFromBalance(times)
		if err != nil {
			t.Fatal(err)
		}
		if profile == "balanced" && id > 1e-12 {
			t.Errorf("balanced profile has dispersion %g", id)
		}
		if profile != "balanced" && id == 0 {
			t.Errorf("%s profile has zero dispersion", profile)
		}
	}
}

func TestBuildUnknownProfile(t *testing.T) {
	if _, err := build(false, 4, 2, 16, "bogus", 0.5, 0); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestBuildBadDimensions(t *testing.T) {
	if _, err := build(false, 0, 2, 16, "balanced", 0.5, 0); err == nil {
		t.Error("zero regions should fail")
	}
	if _, err := build(false, 4, 2, 0, "balanced", 0.5, 0); err == nil {
		t.Error("zero procs should fail")
	}
}

func TestMaxHelper(t *testing.T) {
	if max(3, 5) != 5 || max(5, 3) != 5 {
		t.Error("max helper wrong")
	}
}

func TestRunStdoutJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-regions", "2", "-activities", "1", "-procs", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"procs\": 4") {
		t.Errorf("stdout JSON wrong:\n%s", sb.String())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.csv")
	var sb strings.Builder
	if err := run([]string{"-paper", "-out", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote 7x4x16 cube") {
		t.Errorf("confirmation wrong: %q", sb.String())
	}
	cube, err := tracefmt.OpenCube(path)
	if err != nil || cube.NumRegions() != 7 {
		t.Errorf("written cube unreadable: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-profile", "bogus"}, &sb); err == nil {
		t.Error("bad profile should fail")
	}
	if err := run([]string{"-nosuchflag"}, &sb); err == nil {
		t.Error("bad flag should fail")
	}
}
