// Command tracegen generates synthetic measurement cubes: either the exact
// reconstruction of the paper's case study or a parametric workload with
// injectable imbalance, for testing analysis pipelines and tools.
//
// Usage:
//
//	tracegen -paper -out paper.limb
//	tracegen -regions 10 -activities 4 -procs 64 -profile linear -severity 0.5 -out synth.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "output cube file (.limb, .json or .csv); stdout JSON when empty")
		usePaper   = fs.Bool("paper", false, "emit the reconstructed paper case-study cube")
		regions    = fs.Int("regions", 8, "number of code regions")
		activities = fs.Int("activities", 4, "number of activities")
		procs      = fs.Int("procs", 16, "number of processors")
		profile    = fs.String("profile", "one-hot", "imbalance profile: balanced, one-hot, linear, block, random")
		severity   = fs.Float64("severity", 0.5, "imbalance severity in [0, 1]")
		seed       = fs.Uint64("seed", 1, "seed for the random profile")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cube, err := build(*usePaper, *regions, *activities, *procs, *profile, *severity, *seed)
	if err != nil {
		return err
	}
	if *out == "" {
		return tracefmt.WriteCubeJSON(stdout, cube)
	}
	if err := tracefmt.SaveCube(*out, cube); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %dx%dx%d cube to %s\n", cube.NumRegions(), cube.NumActivities(), cube.NumProcs(), *out)
	return nil
}

func build(usePaper bool, regions, activities, procs int, profile string, severity float64, seed uint64) (*trace.Cube, error) {
	if usePaper {
		return workload.ReconstructCube()
	}
	var prof workload.Profile
	switch profile {
	case "balanced":
		prof = workload.BalancedProfile{}
	case "one-hot":
		prof = workload.OneHotProfile{}
	case "linear":
		prof = workload.LinearProfile{}
	case "block":
		prof = workload.BlockProfile{High: max(1, procs/4)}
	case "random":
		prof = workload.RandomProfile{Seed: seed}
	default:
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
	spec := workload.Uniform(regions, activities, procs)
	spec.Profile = prof
	spec.Severity = severity
	return workload.Synthesize(spec)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
