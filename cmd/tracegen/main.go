// Command tracegen generates synthetic measurement cubes: either the exact
// reconstruction of the paper's case study or a parametric workload with
// injectable imbalance, for testing analysis pipelines and tools.
//
// Usage:
//
//	tracegen -paper -out paper.limb
//	tracegen -regions 10 -activities 4 -procs 64 -profile linear -severity 0.5 -out synth.json
//
// With -emit, tracegen becomes a load generator for the remote ingest
// path instead of writing a file: it streams an event trace to a
// collector (imbamon -ingest) over the binary wire protocol and reports
// the achieved event rate. The stream is either a recorded trace replayed
// from -events (a JSON Lines file, e.g. from cfdsim -events), optionally
// repeated -loop times with timestamps shifted onto a continuous
// timeline, or events synthesized from the generated cube by slicing
// every cell's per-processor time into -emit-iters equal intervals.
//
//	tracegen -emit unix:/tmp/loadimb.sock -events run.jsonl -loop 100
//	tracegen -emit tcp:127.0.0.1:9191 -procs 64 -emit-iters 200
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "output cube file (.limb, .json or .csv); stdout JSON when empty")
		usePaper   = fs.Bool("paper", false, "emit the reconstructed paper case-study cube")
		regions    = fs.Int("regions", 8, "number of code regions")
		activities = fs.Int("activities", 4, "number of activities")
		procs      = fs.Int("procs", 16, "number of processors")
		profile    = fs.String("profile", "one-hot", "imbalance profile: balanced, one-hot, linear, block, random")
		severity   = fs.Float64("severity", 0.5, "imbalance severity in [0, 1]")
		seed       = fs.Uint64("seed", 1, "seed for the random profile")
		emit       = fs.String("emit", "", "stream events to a collector (unix:PATH or tcp:HOST:PORT) instead of writing a cube")
		emitEvents = fs.String("events", "", "with -emit: replay this JSON Lines event trace instead of synthesizing from the cube")
		emitLoop   = fs.Int("loop", 1, "with -emit: stream the trace this many times, shifted onto a continuous timeline")
		emitIters  = fs.Int("emit-iters", 50, "with -emit and no -events: events synthesized per cube cell per processor")
		emitBatch  = fs.Int("emit-batch", 4096, "with -emit: events per wire frame")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cube, err := build(*usePaper, *regions, *activities, *procs, *profile, *severity, *seed)
	if err != nil {
		return err
	}
	if *emit != "" {
		return emitStream(stdout, cube, *emit, *emitEvents, *emitLoop, *emitIters, *emitBatch)
	}
	if *out == "" {
		return tracefmt.WriteCubeJSON(stdout, cube)
	}
	if err := tracefmt.SaveCube(*out, cube); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %dx%dx%d cube to %s\n", cube.NumRegions(), cube.NumActivities(), cube.NumProcs(), *out)
	return nil
}

func build(usePaper bool, regions, activities, procs int, profile string, severity float64, seed uint64) (*trace.Cube, error) {
	if usePaper {
		return workload.ReconstructCube()
	}
	var prof workload.Profile
	switch profile {
	case "balanced":
		prof = workload.BalancedProfile{}
	case "one-hot":
		prof = workload.OneHotProfile{}
	case "linear":
		prof = workload.LinearProfile{}
	case "block":
		prof = workload.BlockProfile{High: max(1, procs/4)}
	case "random":
		prof = workload.RandomProfile{Seed: seed}
	default:
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
	spec := workload.Uniform(regions, activities, procs)
	spec.Profile = prof
	spec.Severity = severity
	return workload.Synthesize(spec)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// emitStream replays or synthesizes an event trace into a remote
// collector over the wire protocol and reports the achieved rate.
func emitStream(stdout io.Writer, cube *trace.Cube, spec, eventsFile string, loop, iters, batch int) error {
	var events []trace.Event
	if eventsFile != "" {
		log, err := tracefmt.OpenEvents(eventsFile)
		if err != nil {
			return err
		}
		events = log.Events()
	} else {
		events = synthesizeEvents(cube, iters)
	}
	if len(events) == 0 {
		return fmt.Errorf("no events to emit")
	}
	span := 0.0
	for _, e := range events {
		if e.End > span {
			span = e.End
		}
	}
	if loop < 1 {
		loop = 1
	}
	cl, err := monitor.DialIngest(spec, monitor.ClientOptions{Batch: batch, FlushInterval: -1})
	if err != nil {
		return err
	}
	start := time.Now()
	var sink trace.Sink = cl
	for r := 0; r < loop; r++ {
		// Each pass is shifted past the previous one, so the receiving
		// collector sees one continuous virtual timeline (and its temporal
		// windows keep advancing) rather than loop-many overlapping runs.
		trace.RecordBatch(trace.ShiftSink(sink, span*float64(r)), events)
		if err := cl.Err(); err != nil {
			return fmt.Errorf("emit stream: %w", err)
		}
	}
	if err := cl.Close(); err != nil {
		return fmt.Errorf("emit stream: %w", err)
	}
	elapsed := time.Since(start)
	total := len(events) * loop
	fmt.Fprintf(stdout, "emitted %d events (%d x %d) to %s in %s (%.2fM events/sec)\n",
		total, loop, len(events), spec, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e6)
	return nil
}

// synthesizeEvents slices every cube cell's per-processor time into iters
// equal events laid end to end on each processor's own timeline — a
// stream whose aggregation reproduces the cube's totals, for driving the
// ingest path without a recorded trace.
func synthesizeEvents(cube *trace.Cube, iters int) []trace.Event {
	if iters < 1 {
		iters = 1
	}
	regions, activities := cube.Regions(), cube.Activities()
	cursors := make([]float64, cube.NumProcs())
	var events []trace.Event
	for k := 0; k < iters; k++ {
		for i, region := range regions {
			for j, activity := range activities {
				for p := 0; p < cube.NumProcs(); p++ {
					t, err := cube.At(i, j, p)
					if err != nil || t <= 0 {
						continue
					}
					d := t / float64(iters)
					events = append(events, trace.Event{
						Rank:     p,
						Region:   region,
						Activity: activity,
						Start:    cursors[p],
						End:      cursors[p] + d,
					})
					cursors[p] += d
				}
			}
		}
	}
	return events
}
