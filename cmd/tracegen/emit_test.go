package main

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

// emitCollector starts an ingest server on a temp socket for the -emit
// tests.
func emitCollector(t *testing.T) (*monitor.Collector, string) {
	t.Helper()
	col := monitor.NewCollector(monitor.Options{})
	srv := monitor.NewIngestServer(col, monitor.IngestOptions{})
	t.Cleanup(func() { srv.Close() })
	sock := filepath.Join(t.TempDir(), "emit.sock")
	if _, err := srv.Listen("unix:" + sock); err != nil {
		t.Fatal(err)
	}
	return col, "unix:" + sock
}

func waitEvents(t *testing.T, col *monitor.Collector, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for col.Events() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := col.Events(); got != want {
		t.Fatalf("collector folded %d events, want %d", got, want)
	}
}

// TestEmitSynthesized: -emit with no -events synthesizes a stream from
// the generated cube whose remote aggregation reproduces the cube's
// totals.
func TestEmitSynthesized(t *testing.T) {
	col, spec := emitCollector(t)
	var out bytes.Buffer
	err := run([]string{
		"-regions", "3", "-activities", "2", "-procs", "4",
		"-profile", "linear", "-severity", "0.5",
		"-emit", spec, "-emit-iters", "5",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "events/sec") {
		t.Errorf("output missing the rate report:\n%s", out.String())
	}

	cube, err := build(false, 3, 2, 4, "linear", 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 0; i < cube.NumRegions(); i++ {
		for j := 0; j < cube.NumActivities(); j++ {
			for p := 0; p < cube.NumProcs(); p++ {
				if v, _ := cube.At(i, j, p); v > 0 {
					want += 5 // one event per -emit-iters slice
				}
			}
		}
	}
	waitEvents(t, col, want)
	snap := col.Snapshot()
	for i := 0; i < cube.NumRegions(); i++ {
		for j := 0; j < cube.NumActivities(); j++ {
			for p := 0; p < cube.NumProcs(); p++ {
				v, _ := cube.At(i, j, p)
				g, _ := snap.Cube.At(i, j, p)
				if math.Abs(g-v) > 1e-9 {
					t.Fatalf("cell (%d,%d,%d): remote aggregation %v, cube %v", i, j, p, g, v)
				}
			}
		}
	}
}

// TestEmitReplayLoop: -events replays a recorded trace, and -loop shifts
// each pass onto a continuous timeline.
func TestEmitReplayLoop(t *testing.T) {
	col, spec := emitCollector(t)
	log := &trace.Log{}
	span := 0.0
	for i := 0; i < 40; i++ {
		s := float64(i) * 0.1
		if err := log.Append(trace.Event{Rank: i % 2, Region: "r", Activity: "a", Start: s, End: s + 0.1}); err != nil {
			t.Fatal(err)
		}
		span = s + 0.1
	}
	file := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := tracefmt.SaveEvents(file, log); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-emit", spec, "-events", file, "-loop", "3"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	waitEvents(t, col, uint64(3*log.Len()))
	if got := col.Snapshot().Span; math.Abs(got-3*span) > 1e-9 {
		t.Fatalf("snapshot span %v, want the 3 passes laid end to end (%v)", got, 3*span)
	}
}

// TestEmitErrors: bad specs and empty sources fail cleanly.
func TestEmitErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-emit", "smoke-signal:foo"}, &out); err == nil {
		t.Error("malformed -emit spec accepted")
	}
	if err := run([]string{"-emit", "unix:/nonexistent-dir-zz/x.sock"}, &out); err == nil {
		t.Error("dial to a nonexistent socket succeeded")
	}
}
