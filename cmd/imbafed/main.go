// Command imbafed federates many imbamon instances into one cluster-wide
// imbalance view: it periodically scrapes each endpoint's /cube.json,
// merges the cubes — ranks offset per job, regions namespaced by endpoint
// name — and re-serves the paper's dispersion indices for the whole fleet
// through the same exposition the per-job monitors use. Endpoints that
// expose window series (/windows.json, collectors started with a window
// width) additionally get their timelines merged, so the federation
// serves a cluster-wide imbalance trajectory too.
//
// Endpoints (see internal/federate): /metrics (federation scrape-state
// gauges, including per-endpoint scrape latency, followed by the cube's
// Prometheus families), /cube.json (the federated measurement cube),
// /timeline.json and /windows.json (the merged cross-job window series;
// 503 when no endpoint exposes windows), /phases.json (phase detection
// over the cluster-wide trajectory, the same segmentation each
// endpoint's own /phases.json runs), /diagnose.json (automatic
// diagnosis over the merged windows, findings naming ranks job-locally
// as "job/3"), /lorenz.json and /healthz
// (per-endpoint scrape state: last success, last attempt, scrape
// latency, consecutive failures, staleness, window availability).
//
// Usage:
//
//	imbamon -addr :9190 -workload cfd &
//	imbamon -addr :9191 -workload masterworker &
//	imbafed -addr :9290 -endpoints cfd=http://localhost:9190,mw=http://localhost:9191
//	curl -s localhost:9290/healthz
//
// Each -endpoints entry is name=url (or a bare url, named after its
// host). An endpoint that fails -max-failures consecutive scrapes is
// marked stale and dropped from the aggregate until it recovers; the
// remaining endpoints keep serving a correct cluster view.
//
// Scrapes speak the binary /delta protocol when the endpoint supports
// it (falling back to JSON transparently; -no-delta forces JSON), and a
// federator serves /delta itself, so federators compose into trees: a
// higher tier scrapes lower-tier federators with -raw, which merges
// their cubes verbatim — the lower tier already namespaced its regions
// and ranks:
//
//	imbafed -addr :9291 -endpoints rackA1=http://a1:9190,rackA2=http://a2:9190
//	imbafed -addr :9292 -endpoints rackB1=http://b1:9190
//	imbafed -addr :9290 -raw -endpoints http://localhost:9291,http://localhost:9292
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"loadimb/internal/federate"
	"loadimb/internal/temporal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imbafed: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	d, err := parseArgs(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	if err := d.run(ctx, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// daemon holds the parsed configuration and the handles tests observe.
type daemon struct {
	addr         string
	endpoints    []federate.Endpoint
	interval     time.Duration
	timeout      time.Duration
	maxFailures  int
	windowCap    int
	raw          bool
	noDelta      bool
	maxBodyBytes int64

	fed *federate.Federator
	// url is the served base URL, valid once started is closed.
	url     string
	started chan struct{}
}

func parseArgs(args []string) (*daemon, error) {
	d := &daemon{started: make(chan struct{})}
	var endpoints string
	fs := flag.NewFlagSet("imbafed", flag.ContinueOnError)
	fs.StringVar(&d.addr, "addr", ":9290", "HTTP listen address")
	fs.StringVar(&endpoints, "endpoints", "",
		"comma-separated imbamon endpoints, each name=url or a bare url")
	fs.DurationVar(&d.interval, "interval", 2*time.Second, "scrape interval per endpoint")
	fs.DurationVar(&d.timeout, "timeout", 5*time.Second, "per-scrape request timeout")
	fs.IntVar(&d.maxFailures, "max-failures", 3,
		"consecutive scrape failures before an endpoint is marked stale")
	fs.IntVar(&d.windowCap, "window-cap", temporal.DefaultWindowCap,
		"max full-resolution windows in the merged series; older windows decimate into a coarse tail (<= 0 = unbounded)")
	fs.BoolVar(&d.raw, "raw", false,
		"endpoints are lower-tier federators: merge their cubes without re-namespacing regions or relabeling ranks")
	fs.BoolVar(&d.noDelta, "no-delta", false,
		"disable the binary /delta scrape path; always fetch full JSON documents")
	fs.Int64Var(&d.maxBodyBytes, "max-body-bytes", 0,
		"per-scrape response body limit in bytes, compressed and decompressed (0 = default 64 MiB, < 0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if endpoints == "" {
		return nil, errors.New("no -endpoints to federate")
	}
	for _, entry := range strings.Split(endpoints, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		var ep federate.Endpoint
		if name, url, ok := strings.Cut(entry, "="); ok {
			ep = federate.Endpoint{Name: name, URL: url}
		} else {
			ep = federate.Endpoint{URL: entry}
		}
		ep.Raw = d.raw
		d.endpoints = append(d.endpoints, ep)
	}
	return d, nil
}

// run starts the scrape loops and serves the federated exposition until
// ctx is canceled. One synchronous scrape round runs before the listener
// opens, so the first request already sees whatever endpoints are up.
func (d *daemon) run(ctx context.Context, stdout io.Writer) error {
	winCap := d.windowCap
	if winCap <= 0 {
		winCap = -1 // flag <= 0 means unbounded; federate.Options uses < 0
	}
	fed, err := federate.New(federate.Options{
		Endpoints:    d.endpoints,
		Interval:     d.interval,
		Timeout:      d.timeout,
		MaxFailures:  d.maxFailures,
		WindowCap:    winCap,
		DisableDelta: d.noDelta,
		MaxBodyBytes: d.maxBodyBytes,
		Logf:         log.Printf,
	})
	if err != nil {
		return err
	}
	d.fed = fed
	fed.ScrapeAll(ctx)

	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		return err
	}
	d.url = "http://" + ln.Addr().String()
	fmt.Fprintf(stdout, "imbafed: serving on %s (federating %d endpoints every %s)\n",
		d.url, len(d.endpoints), d.interval)
	close(d.started)
	srv := &http.Server{Handler: federate.Handler(fed)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()

	runDone := make(chan struct{})
	go func() { defer close(runDone); fed.Run(ctx) }()
	<-ctx.Done()
	<-runDone

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
