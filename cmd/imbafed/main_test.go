package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/serve"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

// testClient bounds every test request so a hung daemon fails fast.
var testClient = &http.Client{Timeout: 10 * time.Second}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := testClient.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestParseArgs(t *testing.T) {
	d, err := parseArgs([]string{
		"-endpoints", "a=http://h1:9190, b=http://h2:9190,http://h3:9190",
		"-interval", "250ms", "-max-failures", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.endpoints) != 3 || d.interval != 250*time.Millisecond || d.maxFailures != 5 {
		t.Fatalf("parsed %+v", d)
	}
	if d.endpoints[0].Name != "a" || d.endpoints[1].Name != "b" || d.endpoints[2].Name != "" {
		t.Fatalf("endpoint names = %+v", d.endpoints)
	}
	if d.endpoints[2].URL != "http://h3:9190" {
		t.Fatalf("bare url parsed as %+v", d.endpoints[2])
	}
	if _, err := parseArgs(nil); err == nil {
		t.Error("missing -endpoints accepted")
	}
	if _, err := parseArgs([]string{"-endpoints", "a=x", "stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
}

// TestDaemonFederates runs the daemon against two live monitor endpoints
// and checks the served aggregate covers both jobs.
func TestDaemonFederates(t *testing.T) {
	mkEndpoint := func(region string, procs int) *httptest.Server {
		c := monitor.NewCollector(monitor.Options{})
		for p := 0; p < procs; p++ {
			c.Record(trace.Event{
				Rank: p, Region: region, Activity: "comp",
				Start: 0, End: 1 + 0.5*float64(p),
			})
		}
		srv := httptest.NewServer(serve.NewHandler(c))
		t.Cleanup(srv.Close)
		return srv
	}
	a := mkEndpoint("solve", 3)
	b := mkEndpoint("sweep", 2)
	d, err := parseArgs([]string{
		"-addr", "127.0.0.1:0",
		"-endpoints", "a=" + a.URL + ",b=" + b.URL,
		"-interval", "50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	runErr := make(chan error, 1)
	go func() { runErr <- d.run(ctx, &buf) }()
	<-d.started

	code, body := httpGet(t, d.url+"/cube.json")
	if code != http.StatusOK {
		t.Fatalf("/cube.json = %d", code)
	}
	cube, err := tracefmt.ReadCubeJSON(strings.NewReader(body))
	if err != nil {
		t.Fatalf("served cube does not parse: %v", err)
	}
	if cube.NumProcs() != 5 {
		t.Errorf("federated procs = %d, want 5", cube.NumProcs())
	}
	regions := cube.Regions()
	if len(regions) != 2 || regions[0] != "a/solve" || regions[1] != "b/sweep" {
		t.Errorf("federated regions = %v", regions)
	}

	code, body = httpGet(t, d.url+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d\n%s", code, body)
	}
	var health struct {
		Status    string `json:"status"`
		Endpoints []struct {
			Name  string `json:"name"`
			Stale bool   `json:"stale"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Endpoints) != 2 {
		t.Fatalf("healthz = %s", body)
	}

	code, body = httpGet(t, d.url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"loadimb_fed_endpoints 2", "loadimb_procs 5"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if out := buf.String(); !strings.Contains(out, "serving on http://") {
		t.Errorf("unexpected daemon output:\n%s", out)
	}
}
