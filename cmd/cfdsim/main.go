// Command cfdsim runs the simulated message-passing CFD program on the
// virtual machine and writes the resulting measurement cube (and
// optionally the raw event trace) for analysis with imba and traceview.
//
// Usage:
//
//	cfdsim -out run.limb                       # paper-like defaults
//	cfdsim -procs 32 -imbalance 0.5 -out run.json
//	cfdsim -events run.jsonl -out run.limb -summary
//	cfdsim -serve 127.0.0.1:9190 -linger 1m    # live /metrics during the run
//	cfdsim -emit unix:/tmp/loadimb.sock        # stream events to imbamon -ingest
//	cfdsim -slow-rank 5 -slow-factor 3 -events run.jsonl   # inject a straggler
//	                                           # (imba -diagnose names it)
//	cfdsim -slow-rank 5 -slow-factor 3 -rebalance reactive # close the loop:
//	                                           # migrate rows until ID_P <= target
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"loadimb/internal/cfd"
	"loadimb/internal/core"
	"loadimb/internal/monitor"
	"loadimb/internal/mpi"
	"loadimb/internal/rebalance"
	"loadimb/internal/report"
	lserve "loadimb/internal/serve"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfdsim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cfdsim", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "output cube file (.limb binary, .json or .csv)")
		events    = fs.String("events", "", "also write the raw event trace (JSON Lines)")
		bytesOut  = fs.String("bytes", "", "also write the byte-counter cube (.limb, .json or .csv)")
		procs     = fs.Int("procs", 16, "number of simulated processors")
		gridX     = fs.Int("gridx", 512, "grid width")
		gridY     = fs.Int("gridy", 512, "grid height (distributed across processors)")
		iters     = fs.Int("iters", 30, "solver iterations")
		imbalance = fs.Float64("imbalance", 0.2, "row-decomposition skew in [0, 1]")
		warmup    = fs.Float64("warmup", 5.2, "uninstrumented startup seconds")
		summary   = fs.Bool("summary", false, "print the analysis summary of the run")
		slowRank  = fs.Int("slow-rank", 0, "rank slowed by -slow-factor (a persistent straggler)")
		slowFac   = fs.Float64("slow-factor", 0, "computation multiplier of -slow-rank; 0 disables the injection")
		serve     = fs.String("serve", "", "serve live /metrics on this address during the run")
		window    = fs.Float64("window", 5, "temporal window width for -serve (virtual seconds)")
		linger    = fs.Duration("linger", 0, "keep the -serve endpoints up this long after the run")
		emit      = fs.String("emit", "", "stream events to a remote collector (unix:PATH or tcp:HOST:PORT, see imbamon -ingest)")
		rebPolicy = fs.String("rebalance", "", "adaptive row rebalancing policy: reactive or predictive; empty disables")
		rebTarget = fs.Float64("rebalance-target", 0.1, "ID_P the rebalancer drives toward")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := cfd.Defaults()
	cfg.Procs = *procs
	cfg.GridX = *gridX
	cfg.GridY = *gridY
	cfg.Iterations = *iters
	cfg.Imbalance = *imbalance
	cfg.InitWarmup = *warmup
	cfg.SlowRank = *slowRank
	cfg.SlowFactor = *slowFac

	var ctrl *rebalance.Controller
	if *rebPolicy != "" {
		var err error
		ctrl, err = rebalance.New(*rebPolicy, rebalance.Options{Target: *rebTarget})
		if err != nil {
			return err
		}
		cfg.Rebalance = ctrl
	}

	var sinks []trace.Sink
	var srv *http.Server
	if *serve != "" {
		regions := cfd.LoopNames
		var handlerOpts []lserve.Option
		if ctrl != nil {
			regions = append(append([]string(nil), regions...), cfd.RebalanceRegion)
			handlerOpts = append(handlerOpts, lserve.WithRebalance(ctrl))
		}
		col := monitor.NewCollector(monitor.Options{
			Window:     *window,
			Regions:    regions,
			Activities: mpi.Activities(),
		})
		sinks = append(sinks, col)
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "serving live metrics on http://%s\n", ln.Addr())
		srv = &http.Server{Handler: lserve.NewHandler(col, handlerOpts...)}
		go srv.Serve(ln)
		defer srv.Close()
	}
	if *emit != "" {
		cl, err := monitor.DialIngest(*emit, monitor.ClientOptions{})
		if err != nil {
			return fmt.Errorf("dialing -emit collector: %w", err)
		}
		fmt.Fprintf(stdout, "streaming events to %s\n", *emit)
		sinks = append(sinks, cl)
		defer func() {
			if err := cl.Close(); err != nil {
				fmt.Fprintf(stdout, "emit stream error: %v\n", err)
			}
		}()
	}
	switch len(sinks) {
	case 0:
	case 1:
		cfg.Sink = sinks[0]
	default:
		cfg.Sink = teeSink(sinks)
	}

	res, err := cfd.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "simulated %d iterations on %d processors: program time %.3f s, instrumented %.3f s, final residual %.3g\n",
		cfg.Iterations, cfg.Procs, res.Cube.ProgramTime(), res.Cube.RegionsTotal(),
		res.Residuals[len(res.Residuals)-1])
	if ctrl != nil {
		s := ctrl.Snapshot()
		fmt.Fprintf(stdout, "rebalance (%s): %d rounds, %d migrations, achieved ID_P %.4f (target %g, converged %v), final rows %v\n",
			s.Policy, s.Rounds, s.Migrations, s.AchievedID, s.Target, s.Converged, res.Rows)
	}

	if *out != "" {
		if err := tracefmt.SaveCube(*out, res.Cube); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote cube to %s\n", *out)
	}
	if *events != "" {
		if err := tracefmt.SaveEvents(*events, res.Log); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d events to %s\n", res.Log.Len(), *events)
	}
	if *bytesOut != "" {
		if err := tracefmt.SaveCube(*bytesOut, res.BytesCube); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote byte counters to %s\n", *bytesOut)
	}
	if *summary {
		analysis, err := core.Analyze(res.Cube, core.AnalyzeOptions{})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, report.Summary(analysis))
	}
	if srv != nil && *linger > 0 {
		fmt.Fprintf(stdout, "lingering %s for final scrapes\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}

// teeSink fans every event (and batch) out to multiple sinks: -serve and
// -emit can observe the same run at once.
type teeSink []trace.Sink

func (t teeSink) Record(e trace.Event) {
	for _, s := range t {
		s.Record(e)
	}
}

func (t teeSink) RecordBatch(events []trace.Event) {
	for _, s := range t {
		trace.RecordBatch(s, events)
	}
}
