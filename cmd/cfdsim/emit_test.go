package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/tracefmt"
)

// TestRunEmit: -emit streams the run's events to a remote collector, and
// the remote fold sees exactly the events the local trace file records.
func TestRunEmit(t *testing.T) {
	col := monitor.NewCollector(monitor.Options{})
	srv := monitor.NewIngestServer(col, monitor.IngestOptions{})
	defer srv.Close()
	sock := filepath.Join(t.TempDir(), "emit.sock")
	if _, err := srv.Listen("unix:" + sock); err != nil {
		t.Fatal(err)
	}

	eventsFile := filepath.Join(t.TempDir(), "run.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-procs", "4", "-gridx", "64", "-gridy", "64", "-iters", "3",
		"-events", eventsFile,
		"-emit", "unix:" + sock,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "streaming events to") {
		t.Errorf("output missing the -emit line:\n%s", out.String())
	}

	log, err := tracefmt.OpenEvents(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(log.Len())
	deadline := time.Now().Add(10 * time.Second)
	for col.Events() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := col.Snapshot().Events; got != want {
		t.Fatalf("remote collector folded %d events, want the run's %d", got, want)
	}
}

// TestRunEmitBadSpec: a malformed -emit spec fails fast, before the
// simulation runs.
func TestRunEmitBadSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-emit", "carrier-pigeon"}, &out); err == nil {
		t.Fatal("malformed -emit spec accepted")
	}
}
