package main

import (
	"path/filepath"
	"strings"
	"testing"

	"loadimb/internal/tracefmt"
)

// fastArgs returns CLI arguments for a quick run.
func fastArgs(extra ...string) []string {
	return append([]string{"-gridx", "64", "-gridy", "64", "-iters", "4"}, extra...)
}

func TestRunSummary(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-summary"), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"simulated 4 iterations on 16 processors",
		"heaviest region: loop 1",
		"dominant activity: computation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesAllOutputs(t *testing.T) {
	dir := t.TempDir()
	cubePath := filepath.Join(dir, "run.limb")
	eventsPath := filepath.Join(dir, "run.jsonl")
	bytesPath := filepath.Join(dir, "bytes.json")
	var sb strings.Builder
	err := run(fastArgs("-out", cubePath, "-events", eventsPath, "-bytes", bytesPath), &sb)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := tracefmt.OpenCube(cubePath)
	if err != nil {
		t.Fatal(err)
	}
	if cube.NumRegions() != 7 || cube.NumProcs() != 16 {
		t.Errorf("cube dims = %d, %d", cube.NumRegions(), cube.NumProcs())
	}
	log, err := tracefmt.OpenEvents(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Error("event trace is empty")
	}
	bytesCube, err := tracefmt.OpenCube(bytesPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytesCube.NumRegions() != 7 {
		t.Errorf("bytes cube regions = %d", bytesCube.NumRegions())
	}
}

func TestRunInvalidConfig(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-procs", "1"}, &sb); err == nil {
		t.Error("invalid config should fail")
	}
	if err := run([]string{"-imbalance", "7"}, &sb); err == nil {
		t.Error("bad imbalance should fail")
	}
	if err := run([]string{"-nosuchflag"}, &sb); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	var sb strings.Builder
	err := run(fastArgs("-out", filepath.Join(t.TempDir(), "no", "dir", "x.limb")), &sb)
	if err == nil {
		t.Error("unwritable output should fail")
	}
}

func TestRunServe(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-serve", "127.0.0.1:0", "-linger", "10ms"), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "serving live metrics on http://127.0.0.1:") {
		t.Errorf("missing serve announcement:\n%s", out)
	}
	if !strings.Contains(out, "lingering 10ms") {
		t.Errorf("missing linger notice:\n%s", out)
	}
	var sb2 strings.Builder
	if err := run(fastArgs("-serve", "256.0.0.1:99999"), &sb2); err == nil {
		t.Error("unlistenable -serve address should fail")
	}
}
