package main

import (
	"path/filepath"
	"testing"

	"loadimb/internal/testbed"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func tempRepo(t *testing.T) *testbed.Repository {
	t.Helper()
	r, err := testbed.Open(filepath.Join(t.TempDir(), "repo"))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCmdAddAndList(t *testing.T) {
	r := tempRepo(t)
	err := cmdAdd(r, []string{"-name", "paper", "-paper", "-system", "sp2", "-program", "cfd", "-tags", "a,b"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("repo has %d entries", r.Len())
	}
	e, _, err := r.Get("paper")
	if err != nil || len(e.Meta.Tags) != 2 || e.Meta.System != "sp2" {
		t.Errorf("entry = %+v, %v", e, err)
	}
	if err := cmdList(r); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestCmdAddValidation(t *testing.T) {
	r := tempRepo(t)
	if err := cmdAdd(r, []string{"-paper"}); err == nil {
		t.Error("missing -name should fail")
	}
	if err := cmdAdd(r, []string{"-name", "x"}); err == nil {
		t.Error("missing -in/-paper should fail")
	}
	if err := cmdAdd(r, []string{"-name", "x", "-paper", "-in", "y.limb"}); err == nil {
		t.Error("both -in and -paper should fail")
	}
}

func TestCmdAddFromFile(t *testing.T) {
	r := tempRepo(t)
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.json")
	if err := tracefmt.SaveCube(path, cube); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdd(r, []string{"-name", "fromfile", "-in", path}); err != nil {
		t.Fatal(err)
	}
	_, loaded, err := r.Get("fromfile")
	if err != nil || !cube.EqualWithin(loaded, 0) {
		t.Errorf("round trip failed: %v", err)
	}
}

func TestCmdQueryShowExportRemove(t *testing.T) {
	r := tempRepo(t)
	if err := cmdAdd(r, []string{"-name", "paper", "-paper", "-system", "sp2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery(r, []string{"-system", "sp2", "-minsid", "0.01"}); err != nil {
		t.Errorf("query: %v", err)
	}
	if err := cmdQuery(r, []string{"-system", "nowhere"}); err != nil {
		t.Errorf("empty query should not error: %v", err)
	}
	if err := cmdShow(r, []string{"-name", "paper"}); err != nil {
		t.Errorf("show: %v", err)
	}
	if err := cmdShow(r, []string{}); err == nil {
		t.Error("show without -name should fail")
	}
	out := filepath.Join(t.TempDir(), "exported.limb")
	if err := cmdExport(r, []string{"-name", "paper", "-out", out}); err != nil {
		t.Errorf("export: %v", err)
	}
	if _, err := tracefmt.OpenCube(out); err != nil {
		t.Errorf("exported cube unreadable: %v", err)
	}
	if err := cmdExport(r, []string{"-name", "paper"}); err == nil {
		t.Error("export without -out should fail")
	}
	if err := cmdRemove(r, []string{"-name", "paper"}); err != nil {
		t.Errorf("remove: %v", err)
	}
	if err := cmdRemove(r, []string{"-name", "paper"}); err == nil {
		t.Error("removing twice should fail")
	}
	if err := cmdRemove(r, []string{}); err == nil {
		t.Error("remove without -name should fail")
	}
}
