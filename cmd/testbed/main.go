// Command testbed manages a tracefile repository: a searchable catalog of
// measurement cubes with metadata and derived imbalance summaries, in the
// spirit of the Tracefile Testbed (ICPP 2002).
//
// Usage:
//
//	testbed -dir traces add -name cfd-16 -in run.limb -system sp2 -program cfd -tags paper,mpi
//	testbed -dir traces add -name paper -paper -system sp2 -program cfd
//	testbed -dir traces list
//	testbed -dir traces query -minprocs 16 -minsid 0.01
//	testbed -dir traces show -name cfd-16
//	testbed -dir traces export -name cfd-16 -out copy.json
//	testbed -dir traces remove -name cfd-16
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"loadimb/internal/core"
	"loadimb/internal/report"
	"loadimb/internal/testbed"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("testbed: ")
	dir := flag.String("dir", "traces", "repository directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("no command: want add, list, query, show, export or remove")
	}
	repo, err := testbed.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "add":
		err = cmdAdd(repo, rest)
	case "list":
		err = cmdList(repo)
	case "query":
		err = cmdQuery(repo, rest)
	case "show":
		err = cmdShow(repo, rest)
	case "export":
		err = cmdExport(repo, rest)
	case "remove":
		err = cmdRemove(repo, rest)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func cmdAdd(repo *testbed.Repository, args []string) error {
	fs := flag.NewFlagSet("add", flag.ContinueOnError)
	name := fs.String("name", "", "entry name")
	in := fs.String("in", "", "cube file to add (.limb or .json)")
	usePaper := fs.Bool("paper", false, "add the reconstructed paper cube")
	system := fs.String("system", "", "system the trace was collected on")
	program := fs.String("program", "", "traced program")
	desc := fs.String("desc", "", "description")
	tags := fs.String("tags", "", "comma-separated tags")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("add: -name is required")
	}
	cube, err := loadAddCube(*in, *usePaper)
	if err != nil {
		return err
	}
	meta := testbed.Meta{System: *system, Program: *program, Description: *desc}
	if *tags != "" {
		meta.Tags = strings.Split(*tags, ",")
	}
	entry, err := repo.Add(*name, meta, cube)
	if err != nil {
		return err
	}
	fmt.Printf("added %s: P=%d, N=%d, K=%d, T=%.3f s, max SID_C=%.5f\n",
		entry.Name, entry.Procs, entry.Regions, entry.Activities, entry.ProgramTime, entry.MaxSID)
	return nil
}

func loadAddCube(in string, usePaper bool) (*trace.Cube, error) {
	switch {
	case usePaper && in != "":
		return nil, fmt.Errorf("add: use either -in or -paper, not both")
	case usePaper:
		return workload.ReconstructCube()
	case in == "":
		return nil, fmt.Errorf("add: pass -in <cube> or -paper")
	}
	return tracefmt.OpenCube(in)
}

func cmdList(repo *testbed.Repository) error {
	entries := repo.List()
	if len(entries) == 0 {
		fmt.Println("repository is empty")
		return nil
	}
	printEntries(entries)
	return nil
}

func cmdQuery(repo *testbed.Repository, args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	system := fs.String("system", "", "match system")
	program := fs.String("program", "", "match program")
	tag := fs.String("tag", "", "match tag")
	minProcs := fs.Int("minprocs", 0, "minimum processor count")
	maxProcs := fs.Int("maxprocs", 0, "maximum processor count (0 = unbounded)")
	minSID := fs.Float64("minsid", 0, "minimum headline imbalance (max SID_C)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	entries := repo.Query(testbed.Filter{
		System: *system, Program: *program, Tag: *tag,
		MinProcs: *minProcs, MaxProcs: *maxProcs, MinSID: *minSID,
	})
	if len(entries) == 0 {
		fmt.Println("no matching traces")
		return nil
	}
	printEntries(entries)
	return nil
}

func printEntries(entries []testbed.Entry) {
	fmt.Printf("%-16s %5s %4s %4s %10s %9s  %-12s %-12s %s\n",
		"name", "procs", "N", "K", "T (s)", "max SID", "system", "program", "tags")
	for _, e := range entries {
		fmt.Printf("%-16s %5d %4d %4d %10.3f %9.5f  %-12s %-12s %s\n",
			e.Name, e.Procs, e.Regions, e.Activities, e.ProgramTime, e.MaxSID,
			e.Meta.System, e.Meta.Program, strings.Join(e.Meta.Tags, ","))
	}
}

func cmdShow(repo *testbed.Repository, args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	name := fs.String("name", "", "entry name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("show: -name is required")
	}
	entry, cube, err := repo.Get(*name)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s on %s)\n", entry.Name, entry.Meta.Program, entry.Meta.System)
	if entry.Meta.Description != "" {
		fmt.Println(entry.Meta.Description)
	}
	analysis, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		return err
	}
	fmt.Print(report.Summary(analysis))
	return nil
}

func cmdExport(repo *testbed.Repository, args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	name := fs.String("name", "", "entry name")
	out := fs.String("out", "", "destination file (.limb or .json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *out == "" {
		return fmt.Errorf("export: -name and -out are required")
	}
	_, cube, err := repo.Get(*name)
	if err != nil {
		return err
	}
	if err := tracefmt.SaveCube(*out, cube); err != nil {
		return err
	}
	fmt.Printf("exported %s to %s\n", *name, *out)
	return nil
}

func cmdRemove(repo *testbed.Repository, args []string) error {
	fs := flag.NewFlagSet("remove", flag.ContinueOnError)
	name := fs.String("name", "", "entry name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("remove: -name is required")
	}
	if err := repo.Remove(*name); err != nil {
		return err
	}
	fmt.Printf("removed %s\n", *name)
	return nil
}
