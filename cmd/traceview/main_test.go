package main

import (
	"path/filepath"
	"strings"
	"testing"

	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func TestLoadCube(t *testing.T) {
	if _, err := loadCube("x.limb", true); err == nil {
		t.Error("both -in and -paper should fail")
	}
	if _, err := loadCube("", false); err == nil {
		t.Error("no input should fail")
	}
	cube, err := loadCube("", true)
	if err != nil || cube.NumRegions() != 7 {
		t.Fatalf("paper cube: %v", err)
	}
	path := filepath.Join(t.TempDir(), "c.json")
	if err := tracefmt.SaveCube(path, cube); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadCube(path, false)
	if err != nil || !cube.EqualWithin(loaded, 0) {
		t.Errorf("file load failed: %v", err)
	}
}

func TestPaperCubeActivities(t *testing.T) {
	cube, err := workload.ReconstructCube()
	if err != nil {
		t.Fatal(err)
	}
	if got := cube.Activities(); len(got) != 4 || got[0] != "computation" {
		t.Errorf("activities = %v", got)
	}
}

func TestRunFigures(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-paper", "-activity", "computation"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "legend: M max") {
		t.Errorf("figure output wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"-paper", "-format", "svg"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("svg output missing")
	}
	sb.Reset()
	if err := run([]string{"-paper", "-format", "counts", "-activity", "computation"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "upper  5") {
		t.Errorf("counts output wrong:\n%s", sb.String())
	}
	if err := run([]string{"-paper", "-format", "bogus"}, &sb); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run([]string{"-paper", "-activity", "nope"}, &sb); err == nil {
		t.Error("unknown activity should fail")
	}
}

func TestRunTimeline(t *testing.T) {
	var l trace.Log
	for _, e := range []trace.Event{
		{Rank: 0, Region: "r", Activity: "comp", Start: 0, End: 2},
		{Rank: 1, Region: "r", Activity: "comp", Start: 0, End: 1},
	} {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	if err := tracefmt.SaveEvents(path, &l); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-timeline", "-events", path, "-width", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rank   0 |CCCCCCCCCC|") {
		t.Errorf("timeline output wrong:\n%s", sb.String())
	}
	if err := run([]string{"-timeline"}, &sb); err == nil {
		t.Error("timeline without events should fail")
	}
	if err := run([]string{"-timeline", "-events", filepath.Join(t.TempDir(), "missing.jsonl")}, &sb); err == nil {
		t.Error("missing events file should fail")
	}
}

func TestRunTimelinePhases(t *testing.T) {
	// Balanced stretch then a one-rank tail: one boundary, two phases.
	var l trace.Log
	for r := 0; r < 3; r++ {
		if err := l.Append(trace.Event{Rank: r, Region: "bulk", Activity: "comp", Start: 0, End: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(trace.Event{Rank: 0, Region: "tail", Activity: "comp", Start: 4, End: 8}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	if err := tracefmt.SaveEvents(path, &l); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := run([]string{"-timeline", "-events", path, "-width", "16", "-window", "1", "-phases"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "phases   |") || !strings.Contains(out, "^") {
		t.Errorf("phase marker row missing:\n%s", out)
	}
	if !strings.Contains(out, "phases:") || !strings.Contains(out, "1. [") {
		t.Errorf("phase listing missing:\n%s", out)
	}

	// Zooming into phase 2 narrows the rendered window to its interval.
	sb.Reset()
	if err := run([]string{"-timeline", "-events", path, "-width", "16", "-window", "1", "-phase", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "timeline [4.000 s, 8.000 s]") {
		t.Errorf("phase zoom window wrong:\n%s", sb.String())
	}

	// The streaming replay reports the boundary at window 4 (t=4.000 s)
	// with its online detection latency.
	sb.Reset()
	if err := run([]string{"-timeline", "-events", path, "-width", "16", "-window", "1", "-stream"}, &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "streaming detection") ||
		!strings.Contains(out, "boundary at window 4 (t=4.000 s)") ||
		!strings.Contains(out, "latency") {
		t.Errorf("stream replay report missing:\n%s", out)
	}

	// Flag validation.
	if err := run([]string{"-timeline", "-events", path, "-phases"}, &sb); err == nil {
		t.Error("-phases without -window should fail")
	}
	if err := run([]string{"-timeline", "-events", path, "-stream"}, &sb); err == nil {
		t.Error("-stream without -window should fail")
	}
	if err := run([]string{"-timeline", "-events", path, "-window", "1", "-phase", "9"}, &sb); err == nil {
		t.Error("out-of-range -phase should fail")
	}
}
