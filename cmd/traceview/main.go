// Command traceview renders the qualitative processor-behavior diagrams of
// the paper's Figures 1 and 2 (per-activity banded patterns) and
// Jumpshot-style per-rank timelines from event traces.
//
// Usage:
//
//	traceview -paper -activity computation          # Figure 1
//	traceview -paper -activity point-to-point       # Figure 2
//	traceview -in run.limb -activity all
//	traceview -paper -activity computation -format svg > fig1.svg
//	traceview -paper -activity computation -format counts
//	traceview -events run.jsonl -timeline -width 100   # Jumpshot-style lanes
//
// With -window the timeline is segmented into phases (penalized
// change-point detection over the windowed imbalance trajectory):
// -phases marks the phase boundaries above the lanes and lists the
// phases, -phase N zooms the view into the Nth phase — the paper's
// "methodology points first, the timeline then shows the flagged
// window", automated:
//
//	traceview -events run.jsonl -timeline -window 0.5 -phases
//	traceview -events run.jsonl -timeline -window 0.5 -phase 2
//
// -stream additionally replays the trajectory through the streaming
// segmenter the live monitor runs (querying it after every window, as a
// scrape would) and reports when each boundary of the final segmentation
// was first flagged — the online detection latency:
//
//	traceview -events run.jsonl -timeline -window 0.5 -phases -stream
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"loadimb/internal/pattern"
	"loadimb/internal/temporal"
	"loadimb/internal/timeline"
	"loadimb/internal/trace"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceview: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input tracefile (.limb binary, .json or .csv)")
		usePaper   = fs.Bool("paper", false, "render the embedded paper case study")
		activity   = fs.String("activity", "all", "activity to render, or all")
		format     = fs.String("format", "ascii", "output format: ascii, svg or counts")
		band       = fs.Float64("band", 0.15, "band fraction of the range (the paper uses 0.15)")
		eventsIn   = fs.String("events", "", "event trace (JSON Lines) for the timeline view")
		doTimeline = fs.Bool("timeline", false, "render a Jumpshot-style per-rank timeline from -events")
		width      = fs.Int("width", 100, "timeline width in columns")
		from       = fs.Float64("from", 0, "timeline window start, seconds")
		to         = fs.Float64("to", 0, "timeline window end, seconds (0 = full span)")
		window     = fs.Float64("window", 0, "temporal window width for phase segmentation, seconds")
		doPhases   = fs.Bool("phases", false, "mark phase boundaries on the timeline and list the phases (requires -window)")
		phaseZoom  = fs.Int("phase", 0, "zoom the timeline into phase N (1-based; requires -window)")
		doStream   = fs.Bool("stream", false, "replay the trajectory through the streaming segmenter and report detection latencies (requires -window)")
		penalty    = fs.Float64("penalty", 0, "change-point penalty for the segmentation (0 = automatic)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *doTimeline {
		if *eventsIn == "" {
			return fmt.Errorf("-timeline needs -events <file.jsonl>")
		}
		if (*doPhases || *phaseZoom > 0 || *doStream) && *window <= 0 {
			return fmt.Errorf("-phases, -phase and -stream need -window <dt> to define the trajectory")
		}
		evs, err := tracefmt.OpenEvents(*eventsIn)
		if err != nil {
			return err
		}
		opts := timeline.Options{Width: *width, From: *from, To: *to}
		if *activity != "all" {
			opts.Activities = []string{*activity}
		}
		var phs []temporal.Phase
		var traj []temporal.WindowStat
		if *window > 0 {
			ser, err := temporal.FoldLog(evs, temporal.Options{Window: *window, Activities: opts.Activities})
			if err != nil {
				return err
			}
			traj = ser.Stats()
			phs = temporal.Segment(traj, *penalty)
			if *phaseZoom > 0 {
				if *phaseZoom > len(phs) {
					return fmt.Errorf("phase %d of %d does not exist", *phaseZoom, len(phs))
				}
				ph := phs[*phaseZoom-1]
				opts.From, opts.To = ph.Start, ph.End
			} else if *doPhases {
				for _, ph := range phs[1:] {
					opts.Marks = append(opts.Marks, ph.Start)
				}
			}
		}
		tl, err := timeline.New(evs, opts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, tl.ASCII())
		if *doPhases {
			fmt.Fprintln(stdout, "phases:")
			for k, ph := range phs {
				fmt.Fprintf(stdout, "  %d. [%.3f s, %.3f s) %-5s mean window ID %.5f (%d windows)\n",
					k+1, ph.Start, ph.End, ph.Label, ph.MeanID, ph.Windows)
			}
		}
		if *doStream {
			streamReport(stdout, traj, *penalty)
		}
		return nil
	}

	cube, err := loadCube(*in, *usePaper)
	if err != nil {
		return err
	}
	activities := cube.Activities()
	if *activity != "all" {
		activities = []string{*activity}
	}
	for _, act := range activities {
		d, err := pattern.New(cube, act, pattern.Options{BandFraction: *band})
		if err != nil {
			return err
		}
		switch *format {
		case "ascii":
			fmt.Fprintln(stdout, d.ASCII())
		case "svg":
			fmt.Fprintln(stdout, d.SVG())
		case "counts":
			fmt.Fprintln(stdout, d.CountsTable())
		default:
			return fmt.Errorf("unknown format %q (want ascii, svg or counts)", *format)
		}
	}
	return nil
}

// streamReport replays the trajectory through the streaming segmenter
// the live monitor runs, querying after every window exactly as a
// scrape would, and reports when each boundary of the final
// segmentation was first flagged. A boundary's latency is how many
// windows beyond it had to arrive before the online optimum committed
// to it — the cost of monitoring live instead of post-mortem.
func streamReport(w io.Writer, traj []temporal.WindowStat, penalty float64) {
	seg := temporal.NewStreamSegmenter(penalty)
	firstSeen := map[int]int{} // boundary position -> windows fed when first flagged
	for i, ws := range traj {
		seg.Append(ws)
		bounds := seg.Boundaries()
		for _, b := range bounds[:len(bounds)-1] {
			if _, ok := firstSeen[b]; !ok {
				firstSeen[b] = i + 1
			}
		}
	}
	fmt.Fprintln(w, "streaming detection (live segmenter replay, queried after every window):")
	final := seg.Boundaries()
	if len(final) <= 1 {
		fmt.Fprintln(w, "  no phase boundaries detected")
		return
	}
	for _, b := range final[:len(final)-1] {
		fed, ok := firstSeen[b]
		if !ok {
			// Committed only once the trajectory was complete (e.g. the
			// automatic penalty settled late).
			fed = len(traj)
		}
		fmt.Fprintf(w, "  boundary at window %d (t=%.3f s): first flagged after window %d (latency %d windows)\n",
			b, traj[b].Start, fed-1, fed-b)
	}
}

func loadCube(path string, usePaper bool) (*trace.Cube, error) {
	switch {
	case usePaper && path != "":
		return nil, fmt.Errorf("use either -in or -paper, not both")
	case usePaper:
		return workload.ReconstructCube()
	case path == "":
		return nil, fmt.Errorf("no input: pass -in <tracefile> or -paper")
	}
	return tracefmt.OpenCube(path)
}
