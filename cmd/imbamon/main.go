// Command imbamon is the live imbalance monitoring daemon: it runs one of
// the built-in simulated workloads with a streaming collector attached
// and serves the paper's dispersion indices over HTTP while the workload
// executes.
//
// Endpoints (see internal/monitor): /metrics (Prometheus text format),
// /cube.json (live measurement cube), /lorenz.json, /timeline.json
// (windowed temporal imbalance), /phases.json (streaming phase
// detection over the window trajectory), /diagnose.json (automatic
// diagnosis: rank cohorts and divergence findings), /healthz, /
// (embedded dashboard) and /debug/pprof/.
//
// Usage:
//
//	imbamon -addr :9190 -workload cfd -window 5
//	imbamon -workload masterworker -procs 16 -tasks 200 -repeat 0   # loop forever
//	imbamon -workload none -ingest unix:/tmp/loadimb.sock,tcp::9191 # ingest-only
//	curl -s localhost:9190/metrics | grep loadimb_sid_c
//
// With -ingest the daemon also accepts the binary event wire protocol
// (internal/tracefmt) on the listed unix:PATH / tcp:HOST:PORT listeners:
// remote instrumented programs stream their events through an ingest
// client (cfdsim -emit, tracegen -emit, or monitor.DialIngest) and the
// daemon folds them into the same live cube, exposing per-connection
// loadimb_ingest_* counters on /metrics. Workload "none" turns the
// daemon into a pure aggregator for remote events.
//
// With -repeat N the workload is run N times back to back (0 = until
// interrupted), each run's events shifted onto a continuous virtual
// timeline so the temporal windows keep advancing. The daemon serves
// until SIGINT/SIGTERM; pass -exit to terminate -linger after the last
// run completes.
//
// To watch a fleet of imbamon instances as one program, point imbafed
// (cmd/imbafed) at their /cube.json endpoints: it federates the cubes
// (rank offsetting + region namespacing) and re-serves the cluster-wide
// indices through the same exposition.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"loadimb/internal/apps"
	"loadimb/internal/cfd"
	"loadimb/internal/core"
	"loadimb/internal/monitor"
	"loadimb/internal/mpi"
	"loadimb/internal/rebalance"
	"loadimb/internal/serve"
	"loadimb/internal/temporal"
	"loadimb/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imbamon: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	d, err := parseArgs(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	if err := d.run(ctx, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// daemon holds the parsed configuration and the handles tests observe.
type daemon struct {
	addr       string
	ingest     string
	ingestDrop bool
	maxRank    int
	workload   string
	procs      int
	tasks      int
	iters      int
	sweeps     int
	phases     int
	imbalance  float64
	window     float64
	windowCap  int
	penalty    float64
	slowRank   int
	slowFac    float64
	repeat     int
	exit       bool
	linger     time.Duration
	rebPolicy  string
	rebTarget  float64

	ctrl *rebalance.Controller
	col  *monitor.Collector
	// url is the served base URL, valid once started is closed.
	url     string
	started chan struct{}
	// workloadDone is closed when the last workload run has finished
	// (the server keeps serving afterwards).
	workloadDone chan struct{}
}

func parseArgs(args []string) (*daemon, error) {
	d := &daemon{started: make(chan struct{}), workloadDone: make(chan struct{})}
	fs := flag.NewFlagSet("imbamon", flag.ContinueOnError)
	fs.StringVar(&d.addr, "addr", ":9190", "HTTP listen address")
	fs.StringVar(&d.ingest, "ingest", "", "comma-separated event ingest listeners (unix:PATH or tcp:HOST:PORT); remote producers stream binary event frames here")
	fs.BoolVar(&d.ingestDrop, "ingest-drop", false, "drop events when an ingest connection's ring is full instead of applying backpressure")
	fs.IntVar(&d.maxRank, "max-rank", 0, "largest event rank accepted; higher ranks are dropped as malformed, bounding the memory one wire frame can force (0 = default 2^20, < 0 = unbounded, only safe without -ingest)")
	fs.StringVar(&d.workload, "workload", "cfd", "workload: cfd, masterworker, wavefront, amr, or none (ingest-only daemon)")
	fs.IntVar(&d.procs, "procs", 16, "simulated processors")
	fs.IntVar(&d.tasks, "tasks", 120, "tasks (masterworker)")
	fs.IntVar(&d.iters, "iters", 30, "solver iterations (cfd)")
	fs.IntVar(&d.sweeps, "sweeps", 20, "sweep pairs (wavefront)")
	fs.IntVar(&d.phases, "phases", 6, "refinement phases (amr)")
	fs.Float64Var(&d.imbalance, "imbalance", 0.2, "decomposition skew in [0, 1] (cfd)")
	fs.IntVar(&d.slowRank, "slow-rank", 0, "rank slowed by -slow-factor (cfd and amr): a persistent straggler the diagnosis names")
	fs.Float64Var(&d.slowFac, "slow-factor", 0, "computation multiplier of -slow-rank; 0 disables the injection")
	fs.Float64Var(&d.window, "window", 5, "temporal window width in virtual seconds (0 = off)")
	fs.IntVar(&d.windowCap, "window-cap", temporal.DefaultWindowCap,
		"max full-resolution windows retained; older windows decimate 2:1 into a coarse tail (<= 0 = unbounded)")
	fs.Float64Var(&d.penalty, "phase-penalty", 0, "segmentation penalty for live phase detection (<= 0 = automatic)")
	fs.StringVar(&d.rebPolicy, "rebalance", "", "adaptive rebalancing policy: reactive or predictive (cfd, masterworker, amr); empty disables")
	fs.Float64Var(&d.rebTarget, "rebalance-target", 0.1, "ID_P the rebalancer drives toward")
	fs.IntVar(&d.repeat, "repeat", 1, "workload repetitions (0 = loop until interrupted)")
	fs.BoolVar(&d.exit, "exit", false, "terminate after the last run instead of serving forever")
	fs.DurationVar(&d.linger, "linger", 0, "with -exit, keep serving this long after the last run")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	switch d.workload {
	case "cfd", "masterworker", "wavefront", "amr":
	case "none":
		if d.ingest == "" {
			return nil, fmt.Errorf("workload none needs -ingest: there would be no event source at all")
		}
	default:
		return nil, fmt.Errorf("unknown workload %q (want cfd, masterworker, wavefront, amr or none)", d.workload)
	}
	if d.rebPolicy != "" {
		switch d.workload {
		case "cfd", "masterworker", "amr":
		default:
			return nil, fmt.Errorf("-rebalance is not supported for workload %q", d.workload)
		}
		ctrl, err := rebalance.New(d.rebPolicy, rebalance.Options{Target: d.rebTarget})
		if err != nil {
			return nil, err
		}
		d.ctrl = ctrl
	}
	return d, nil
}

// regionOrder returns the preset cube region order of the workload, when
// its names are known up front, so gauge label sets are stable from the
// first scrape.
func (d *daemon) regionOrder() []string {
	var out []string
	switch d.workload {
	case "cfd":
		out = append(out, cfd.LoopNames...)
		if d.ctrl != nil {
			out = append(out, cfd.RebalanceRegion)
		}
	case "amr":
		for i := 0; i < d.phases; i++ {
			out = append(out, apps.AMRRegionName(i))
		}
		if d.ctrl != nil {
			out = append(out, apps.AMRRebalanceRegion)
		}
	}
	return out
}

// runOnce executes the configured workload once with the sink attached,
// returning the run's virtual-time span.
func (d *daemon) runOnce(sink trace.Sink) (float64, error) {
	switch d.workload {
	case "cfd":
		cfg := cfd.Defaults()
		cfg.Procs = d.procs
		cfg.Iterations = d.iters
		cfg.Imbalance = d.imbalance
		cfg.SlowRank = d.slowRank
		cfg.SlowFactor = d.slowFac
		cfg.Sink = sink
		if d.ctrl != nil {
			cfg.Rebalance = d.ctrl
		}
		res, err := cfd.Run(cfg)
		if err != nil {
			return 0, err
		}
		return res.Log.Span(), nil
	case "masterworker":
		cfg := apps.DefaultMasterWorker()
		cfg.Procs = d.procs
		cfg.Tasks = d.tasks
		cfg.Sink = sink
		if d.ctrl != nil {
			cfg.Rebalance = d.ctrl
		}
		res, err := apps.MasterWorker(cfg)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	case "wavefront":
		cfg := apps.DefaultWavefront()
		cfg.Procs = d.procs
		cfg.Sweeps = d.sweeps
		cfg.Sink = sink
		res, err := apps.Wavefront(cfg)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	case "amr":
		cfg := apps.DefaultAMR()
		cfg.Procs = d.procs
		cfg.Phases = d.phases
		cfg.Straggler = d.slowRank
		cfg.StragglerFactor = d.slowFac
		cfg.Sink = sink
		if d.ctrl != nil {
			cfg.Rebalance = d.ctrl
		}
		res, err := apps.AMR(cfg)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	return 0, fmt.Errorf("unknown workload %q", d.workload)
}

// run serves the monitoring endpoints while executing the workload
// schedule, then keeps serving until ctx is canceled (or, with -exit,
// shuts down -linger after the last run).
func (d *daemon) run(ctx context.Context, stdout io.Writer) error {
	winCap := d.windowCap
	if winCap <= 0 {
		winCap = -1 // flag <= 0 means unbounded; monitor.Options uses < 0
	}
	d.col = monitor.NewCollector(monitor.Options{
		Window:       d.window,
		WindowCap:    winCap,
		PhasePenalty: d.penalty,
		MaxRank:      d.maxRank,
		Regions:      d.regionOrder(),
		Activities:   mpi.Activities(),
	})
	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		return err
	}
	var handlerOpts []serve.Option
	if d.ingest != "" {
		ing := monitor.NewIngestServer(d.col, monitor.IngestOptions{DropOnFull: d.ingestDrop})
		defer ing.Close()
		for _, spec := range strings.Split(d.ingest, ",") {
			addr, err := ing.Listen(strings.TrimSpace(spec))
			if err != nil {
				ln.Close()
				return err
			}
			fmt.Fprintf(stdout, "imbamon: ingesting events on %s (%s)\n", addr, addr.Network())
		}
		handlerOpts = append(handlerOpts, serve.WithIngest(ing))
	}
	if d.ctrl != nil {
		handlerOpts = append(handlerOpts, serve.WithRebalance(d.ctrl))
	}
	d.url = "http://" + ln.Addr().String()
	fmt.Fprintf(stdout, "imbamon: serving on %s (workload %s, P=%d)\n", d.url, d.workload, d.procs)
	close(d.started)
	srv := &http.Server{Handler: serve.NewHandler(d.col, handlerOpts...)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()

	offset := 0.0
	var runErr error
	for r := 0; d.workload != "none" && (d.repeat <= 0 || r < d.repeat); r++ {
		if ctx.Err() != nil {
			break
		}
		span, err := d.runOnce(trace.ShiftSink(d.col, offset))
		if err != nil {
			runErr = fmt.Errorf("workload run %d: %w", r+1, err)
			break
		}
		offset += span
	}
	// An ingest-only daemon has no workload run to summarize up front; its
	// summary is the final state of the remote stream, printed at shutdown.
	if d.workload != "none" {
		d.printSummary(stdout, d.col.Snapshot())
		if d.ctrl != nil {
			s := d.ctrl.Snapshot()
			fmt.Fprintf(stdout, "imbamon: rebalance (%s): %d rounds, %d migrations, achieved ID_P %.4f (target %g, converged %v)\n",
				s.Policy, s.Rounds, s.Migrations, s.AchievedID, s.Target, s.Converged)
		}
	}
	close(d.workloadDone)
	if runErr != nil {
		return runErr
	}

	if d.exit {
		select {
		case <-time.After(d.linger):
		case <-ctx.Done():
		}
	} else {
		<-ctx.Done()
	}
	if d.workload == "none" {
		d.printSummary(stdout, d.col.Snapshot())
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// printSummary reports the final state of the collector: totals and the
// most imbalanced-and-significant region, the methodology's headline.
func (d *daemon) printSummary(stdout io.Writer, snap *monitor.Snapshot) {
	if snap.Cube == nil {
		fmt.Fprintln(stdout, "imbamon: no events collected")
		return
	}
	fmt.Fprintf(stdout, "imbamon: %d events, T=%.3f s over %d windows\n",
		snap.Events, snap.Cube.ProgramTime(), len(snap.Windows))
	if n := len(snap.Phases); n > 0 {
		cur := snap.Phases[n-1]
		fmt.Fprintf(stdout, "imbamon: %d phases detected (%d changes), current %q since t=%.3f s\n",
			n, n-1, cur.Label, cur.Start)
	}
	if rep := snap.Diagnosis(); rep != nil && len(rep.Findings) > 0 {
		fmt.Fprintf(stdout, "imbamon: diagnosis: %s (%d findings total)\n",
			rep.Findings[0].Summary, len(rep.Findings))
	}
	regs, err := core.CodeRegionView(snap.Cube, core.Options{})
	if err != nil {
		fmt.Fprintf(stdout, "imbamon: region view: %v\n", err)
		return
	}
	best := -1
	for i, r := range regs {
		if r.Defined && (best == -1 || r.SID > regs[best].SID) {
			best = i
		}
	}
	if best >= 0 {
		fmt.Fprintf(stdout, "imbamon: most imbalanced region %q (SID_C=%.5f, ID_C=%.5f)\n",
			regs[best].Name, regs[best].SID, regs[best].ID)
	}
}
