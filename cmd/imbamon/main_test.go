package main

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"loadimb/internal/core"
	"loadimb/internal/monitor"
	"loadimb/internal/stats"
	"loadimb/internal/tracefmt"
)

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// scrapeKey canonicalizes a metric identity: name|k=v,k=v with sorted labels.
func scrapeKey(name string, labels ...string) string {
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+"="+labels[i+1])
	}
	sort.Strings(pairs)
	return name + "|" + strings.Join(pairs, ",")
}

// parseMetrics parses a Prometheus text exposition into key -> value,
// failing the test on any malformed or non-finite sample line.
func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	unescape := func(s string) string {
		r := strings.NewReplacer(`\\`, "\x00", `\"`, `"`, `\n`, "\n")
		return strings.ReplaceAll(r.Replace(s), "\x00", `\`)
	}
	out := map[string]float64{}
	for n, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("metrics line %d is not a valid sample: %q", n+1, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("metrics line %d has bad value %q", n+1, m[3])
		}
		var labels []string
		for _, lm := range labelRe.FindAllStringSubmatch(m[2], -1) {
			labels = append(labels, lm[1], unescape(lm[2]))
		}
		out[scrapeKey(m[1], labels...)] = v
	}
	return out
}

// testClient bounds every test request: a hung daemon must fail the test
// fast instead of stalling the whole CI run.
var testClient = &http.Client{Timeout: 10 * time.Second}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := testClient.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestParseArgs(t *testing.T) {
	d, err := parseArgs([]string{"-workload", "wavefront", "-procs", "9", "-repeat", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if d.workload != "wavefront" || d.procs != 9 || d.repeat != 3 {
		t.Fatalf("parsed %+v", d)
	}
	if _, err := parseArgs([]string{"-workload", "mandelbrot"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := parseArgs([]string{"stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
}

// TestDaemonLiveMetrics is the end-to-end acceptance test: the daemon
// runs a built-in workload, /healthz answers 200, /metrics stays
// parseable mid-run, and once the workload finishes the served gauges
// agree with an offline core.Analyze of the served cube to 1e-9.
func TestDaemonLiveMetrics(t *testing.T) {
	d, err := parseArgs([]string{
		"-addr", "127.0.0.1:0",
		"-workload", "masterworker",
		"-procs", "5", "-tasks", "40",
		"-repeat", "2", "-window", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	runErr := make(chan error, 1)
	go func() { runErr <- d.run(ctx, &buf) }()
	<-d.started

	if code, body := httpGet(t, d.url+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}

	// Scrape while the workload runs: every exposition must parse,
	// whatever progress the collector has made.
	midScrapes := 0
workload:
	for {
		select {
		case <-d.workloadDone:
			break workload
		default:
			code, body := httpGet(t, d.url+"/metrics")
			if code != http.StatusOK {
				t.Fatalf("mid-run /metrics = %d", code)
			}
			parseMetrics(t, body)
			midScrapes++
		}
	}
	t.Logf("completed %d mid-run scrapes", midScrapes)

	// Workload finished: the served cube must round-trip through
	// tracefmt and the gauges must match offline analysis of it.
	code, cubeBody := httpGet(t, d.url+"/cube.json")
	if code != http.StatusOK {
		t.Fatalf("/cube.json = %d", code)
	}
	cube, err := tracefmt.ReadCubeJSON(strings.NewReader(cubeBody))
	if err != nil {
		t.Fatalf("served cube does not parse: %v", err)
	}
	analysis, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	code, metricsBody := httpGet(t, d.url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	got := parseMetrics(t, metricsBody)
	const tol = 1e-9
	check := func(what, key string, want float64) {
		t.Helper()
		v, ok := got[key]
		if !ok {
			t.Errorf("%s: metric %s not exposed", what, key)
			return
		}
		if math.Abs(v-want) > tol {
			t.Errorf("%s = %.12g, want %.12g", what, v, want)
		}
	}
	check("program time", scrapeKey(monitor.MetricProgramTime), cube.ProgramTime())
	check("procs", scrapeKey(monitor.MetricProcs), float64(cube.NumProcs()))
	for _, a := range analysis.Activities {
		if !a.Defined {
			continue
		}
		check("id_a "+a.Name, scrapeKey(monitor.MetricIDActivity, "activity", a.Name), a.ID)
		check("sid_a "+a.Name, scrapeKey(monitor.MetricSIDActivity, "activity", a.Name), a.SID)
	}
	for _, r := range analysis.Regions {
		if !r.Defined {
			continue
		}
		check("id_c "+r.Name, scrapeKey(monitor.MetricIDRegion, "region", r.Name), r.ID)
		check("sid_c "+r.Name, scrapeKey(monitor.MetricSIDRegion, "region", r.Name), r.SID)
	}
	regions := cube.Regions()
	for i := range analysis.Processors.ByRegion {
		for p, dv := range analysis.Processors.ByRegion[i] {
			if !dv.Defined {
				continue
			}
			check("id_p "+regions[i],
				scrapeKey(monitor.MetricIDProc, "region", regions[i], "proc", strconv.Itoa(p)), dv.ID)
		}
	}
	perProc := make([]float64, cube.NumProcs())
	for p := range perProc {
		v, err := cube.ProcTotalTime(p)
		if err != nil {
			t.Fatal(err)
		}
		perProc[p] = v
	}
	check("gini", scrapeKey(monitor.MetricGini), stats.Gini.Of(perProc))

	// Temporal windows were produced (repeat=2 shifts the second run
	// past the first, so the timeline spans both): the latest-window
	// dispersion gauge must be present.
	foundWindow := false
	for k, v := range got {
		if strings.HasPrefix(k, monitor.MetricWindowID+"|window=") {
			foundWindow = true
			if v < 0 {
				t.Errorf("negative window ID gauge %s = %g", k, v)
			}
		}
	}
	if !foundWindow {
		t.Error("no window ID gauge exposed despite -window 2")
	}

	// Live phase detection rides on the same window series: /phases.json
	// must answer with at least one phase and the scrape must carry the
	// phase gauges for the finished run.
	code, phasesBody := httpGet(t, d.url+"/phases.json")
	if code != http.StatusOK {
		t.Fatalf("/phases.json = %d", code)
	}
	if !strings.Contains(phasesBody, `"phases"`) || !strings.Contains(phasesBody, `"label"`) {
		t.Errorf("phases payload lacks phase list: %s", phasesBody)
	}
	if _, ok := got[scrapeKey(monitor.MetricPhaseChanges)]; !ok {
		t.Errorf("metric %s not exposed despite windowing", monitor.MetricPhaseChanges)
	}
	currentSum := 0.0
	for _, l := range []string{"idle", "quiet", "hot"} {
		currentSum += got[scrapeKey(monitor.MetricPhaseCurrent, "label", l)]
	}
	if currentSum != 1 {
		t.Errorf("phase_current gauges sum to %g, want exactly one label set", currentSum)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("daemon exited with error: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "serving on http://") ||
		!strings.Contains(out, "most imbalanced region") ||
		!strings.Contains(out, "phases detected") {
		t.Errorf("unexpected daemon output:\n%s", out)
	}
}

// TestDaemonExitFlag checks that -exit terminates the daemon on its own
// after the linger period, without an interrupt.
func TestDaemonExitFlag(t *testing.T) {
	d, err := parseArgs([]string{
		"-addr", "127.0.0.1:0",
		"-workload", "amr", "-procs", "4", "-phases", "3",
		"-exit", "-linger", "50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- d.run(context.Background(), &buf) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit on its own")
	}
}
