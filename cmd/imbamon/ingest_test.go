package main

import (
	"bytes"
	"context"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"loadimb/internal/monitor"
	"loadimb/internal/trace"
)

func TestParseArgsIngest(t *testing.T) {
	d, err := parseArgs([]string{"-workload", "none", "-ingest", "unix:/tmp/x.sock, tcp:127.0.0.1:0", "-ingest-drop"})
	if err != nil {
		t.Fatal(err)
	}
	if d.workload != "none" || d.ingest == "" || !d.ingestDrop {
		t.Fatalf("parsed %+v", d)
	}
	if _, err := parseArgs([]string{"-workload", "none"}); err == nil {
		t.Error("workload none without -ingest accepted: the daemon would have no event source")
	}
}

// TestDaemonIngest: an ingest-only daemon (workload none) aggregates a
// remote event stream and exposes both the collector families and the
// loadimb_ingest_* counters on /metrics.
func TestDaemonIngest(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "ingest.sock")
	d, err := parseArgs([]string{
		"-addr", "127.0.0.1:0",
		"-workload", "none",
		"-ingest", "unix:" + sock,
		"-window", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	runErr := make(chan error, 1)
	go func() { runErr <- d.run(ctx, &buf) }()
	<-d.started

	cl, err := monitor.DialIngest("unix:"+sock, monitor.ClientOptions{Batch: 64})
	if err != nil {
		t.Fatalf("dialing daemon ingest: %v", err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		s := float64(i) * 0.01
		cl.Record(trace.Event{Rank: i % 4, Region: "remote", Activity: "computation", Start: s, End: s + 0.01})
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("closing client: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var metrics map[string]float64
	for {
		code, body := httpGet(t, d.url+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
		metrics = parseMetrics(t, body)
		if metrics[scrapeKey(monitor.MetricEventsTotal)] >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never folded the %d remote events; last exposition:\n%s", n, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := metrics[scrapeKey(monitor.MetricIngestEventsTotal)]; got != n {
		t.Errorf("%s = %v, want %d", monitor.MetricIngestEventsTotal, got, n)
	}
	if got := metrics[scrapeKey(monitor.MetricIngestConnsTotal)]; got != 1 {
		t.Errorf("%s = %v, want 1", monitor.MetricIngestConnsTotal, got)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("daemon run: %v\noutput:\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("ingesting events on")) {
		t.Errorf("startup output missing the ingest listener line:\n%s", buf.String())
	}
	// The ingest-only summary is printed at shutdown, once the remote
	// stream has actually been folded.
	if !bytes.Contains(buf.Bytes(), []byte("500 events")) {
		t.Errorf("shutdown output missing the ingested-events summary:\n%s", buf.String())
	}
}
