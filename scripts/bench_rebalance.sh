#!/bin/sh
# Record the adaptive-rebalancing benchmarks into BENCH_rebalance.json so
# the closed measure->decide->migrate loop is tracked across commits (see
# ISSUE 10). BenchmarkRebalanceAMR / BenchmarkRebalanceMW run the
# acceptance scenarios — a persistent 5x straggler — once without
# rebalancing (baseline) and once per policy. Acceptance floors:
#
#   - reactive must bring the AMR straggler's ID_P below 0.1
#     (derived field amr_reactive_id) and improve the makespan over the
#     no-rebalance baseline (amr_reactive_speedup > 1);
#   - predictive must reach the target in no more rounds than reactive
#     (amr_predictive_rounds <= amr_reactive_rounds).
#
# makespan_s is the virtual-time makespan of the run; id_p is the
# Euclidean index of dispersion the controller last measured;
# rounds_to_target counts decision boundaries until ID_P first dropped
# below the target; migrations counts individual work moves.
#
# Usage: scripts/bench_rebalance.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_rebalance.json}"

raw=$(go test -run '^$' \
	-bench 'BenchmarkRebalance(AMR|MW)' \
	-benchtime 3x -count 3 ./internal/apps/)

printf '%s\n' "$raw" | awk -v go_version="$(go env GOVERSION)" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	# -count N repeats each benchmark; keep the best (min ns/op) run.
	# The simulated metrics are deterministic across repeats.
	keep = 0
	if (name in best) {
		if ($3 + 0 < best[name] + 0) { keep = 1 }
	} else {
		names[n++] = name; keep = 1
		span[name] = "null"; idp[name] = "null"
		rounds[name] = "null"; moves[name] = "null"
	}
	if (keep) {
		best[name] = $3; iters[name] = $2
		for (i = 4; i < NF; i++) {
			if ($(i + 1) == "makespan_s") span[name] = $i
			if ($(i + 1) == "id_p") idp[name] = $i
			if ($(i + 1) == "rounds_to_target") rounds[name] = $i
			if ($(i + 1) == "migrations") moves[name] = $i
		}
	}
}
END {
	printf "{\n  \"suite\": \"rebalance\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", go_version
	for (i = 0; i < n; i++) {
		name = names[i]
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"makespan_s\": %s, \"id_p\": %s, \"rounds_to_target\": %s, \"migrations\": %s}%s\n", \
			name, iters[name], best[name], span[name], idp[name], rounds[name], moves[name], (i < n - 1 ? "," : "")
	}
	printf "  ],\n  \"derived\": {\n"
	ab = span["BenchmarkRebalanceAMR/baseline"]
	ar = span["BenchmarkRebalanceAMR/reactive"]
	ap = span["BenchmarkRebalanceAMR/predictive"]
	mb = span["BenchmarkRebalanceMW/baseline"]
	mr = span["BenchmarkRebalanceMW/reactive"]
	mp = span["BenchmarkRebalanceMW/predictive"]
	printf "    \"amr_reactive_speedup\": %.3f,\n", ab / ar
	printf "    \"amr_predictive_speedup\": %.3f,\n", ab / ap
	printf "    \"amr_reactive_id\": %s,\n", idp["BenchmarkRebalanceAMR/reactive"]
	printf "    \"amr_reactive_rounds\": %s,\n", rounds["BenchmarkRebalanceAMR/reactive"]
	printf "    \"amr_predictive_rounds\": %s,\n", rounds["BenchmarkRebalanceAMR/predictive"]
	printf "    \"mw_reactive_speedup\": %.3f,\n", mb / mr
	printf "    \"mw_predictive_speedup\": %.3f,\n", mb / mp
	printf "    \"mw_reactive_id\": %s,\n", idp["BenchmarkRebalanceMW/reactive"]
	printf "    \"mw_reactive_rounds\": %s,\n", rounds["BenchmarkRebalanceMW/reactive"]
	printf "    \"mw_predictive_rounds\": %s\n", rounds["BenchmarkRebalanceMW/predictive"]
	printf "  }\n}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
