#!/bin/sh
# Record the monitoring-overhead benchmarks into BENCH_monitor.json so the
# perf trajectory of the collector hot path is tracked across commits.
# The budget is < 1000 ns/op on BenchmarkCollectorRecord (see
# EXPERIMENTS.md, "Monitoring overhead").
#
# Usage: scripts/bench_monitor.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_monitor.json}"

raw=$(go test -run '^$' -bench 'BenchmarkCollector|BenchmarkSnapshot' \
	-benchmem -benchtime 1s ./internal/monitor/)

printf '%s\n' "$raw" | awk -v go_version="$(go env GOVERSION)" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	names[n] = name; iters[n] = $2; ns[n] = $3
	bytes[n] = "null"; allocs[n] = "null"
	for (i = 4; i < NF; i++) {
		if ($(i + 1) == "B/op") bytes[n] = $i
		if ($(i + 1) == "allocs/op") allocs[n] = $i
	}
	n++
}
END {
	printf "{\n  \"suite\": \"monitor\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", go_version
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			names[i], iters[i], ns[i], bytes[i], allocs[i], (i < n - 1 ? "," : "")
	}
	printf "  ]\n}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
