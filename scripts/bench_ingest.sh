#!/bin/sh
# Record the batched-ingest benchmarks into BENCH_ingest.json so the perf
# trajectory of the zero-alloc publish path and the binary wire protocol
# is tracked across commits (see ISSUE 8 and EXPERIMENTS.md, "Ingest
# throughput & self-interference"). Acceptance floors:
#
#   - BenchmarkRecordBatch must be >= 5x faster per event than
#     BenchmarkCollectorRecord, at 0 allocs/op (derived field
#     record_batch_speedup).
#   - BenchmarkIngestWire must sustain >= 10M events/sec over the Unix
#     socket, end to end through decode and fold (derived field
#     wire_events_per_sec).
#
# BenchmarkSelfInterference runs the cfd workload detached / with an
# in-process collector / streaming over the wire to a local ingest
# daemon; the derived ratios (>= 1.0, lower is better) are the cost of
# observation in units of the uninstrumented run.
#
# Usage: scripts/bench_ingest.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_ingest.json}"

raw=$(go test -run '^$' \
	-bench 'BenchmarkCollectorRecord$|BenchmarkRecordBatch$|BenchmarkIngestWire$|BenchmarkSelfInterference' \
	-benchmem -count 3 ./internal/monitor/)

printf '%s\n' "$raw" | awk -v go_version="$(go env GOVERSION)" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	# -count N repeats each benchmark; keep the best (min ns/op) run.
	if (name in best) {
		if ($3 + 0 < best[name] + 0) { best[name] = $3; iters[name] = $2 }
	} else {
		names[n++] = name; best[name] = $3; iters[name] = $2
		bytes[name] = "null"; allocs[name] = "null"
	}
	for (i = 4; i < NF; i++) {
		if ($(i + 1) == "B/op") bytes[name] = $i
		if ($(i + 1) == "allocs/op") allocs[name] = $i
	}
}
END {
	printf "{\n  \"suite\": \"ingest\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", go_version
	for (i = 0; i < n; i++) {
		name = names[i]
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			name, iters[name], best[name], bytes[name], allocs[name], (i < n - 1 ? "," : "")
	}
	printf "  ],\n  \"derived\": {\n"
	rec = best["BenchmarkCollectorRecord"]
	bat = best["BenchmarkRecordBatch"]
	wire = best["BenchmarkIngestWire"]
	det = best["BenchmarkSelfInterference/detached"]
	att = best["BenchmarkSelfInterference/attached"]
	wat = best["BenchmarkSelfInterference/wire"]
	printf "    \"record_batch_speedup\": %.1f,\n", rec / bat
	printf "    \"wire_events_per_sec\": %d,\n", 1e9 / wire
	printf "    \"self_interference_attached\": %.4f,\n", att / det
	printf "    \"self_interference_wire\": %.4f\n", wat / det
	printf "  }\n}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
