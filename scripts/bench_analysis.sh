#!/bin/sh
# Record the analysis-engine benchmarks into BENCH_analysis.json so the
# perf trajectory of the core methodology — the paper tables and the full
# pipeline over growing cube sizes — is tracked across commits. The
# acceptance floor of the marginal-cache engine is >= 3x ns/op and >= 10x
# allocs/op on BenchmarkFullPipeline/N128xK8xP256 versus the pre-cache
# baseline (see EXPERIMENTS.md, "Analysis engine"). BenchmarkStreamSegment
# tracks the live monitor's incremental segmentation: ns/op is the
# amortized cost per appended window and must stay effectively constant
# on the fixed-penalty path. BenchmarkDiagnose tracks the automatic
# diagnosis (fingerprint -> cluster -> score, 256 ranks x 8 phases); one
# report must stay well under a scrape interval, since the monitor
# recomputes it once per fold generation. BenchmarkBoundedScrapeLongRun
# tracks the bounded-retention guarantee: the per-scrape cost after 1M
# accumulated windows must stay within 2x of the cost after 10k — scrape
# time independent of run length (see ISSUE 7).
#
# Usage: scripts/bench_analysis.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_analysis.json}"

raw=$(go test -run '^$' -bench 'FullPipeline|Table|ProcessorView|TemporalFold|StreamSegment|Diagnose|BoundedScrapeLongRun' \
	-benchmem -count 5 .)

printf '%s\n' "$raw" | awk -v go_version="$(go env GOVERSION)" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	names[n] = name; iters[n] = $2; ns[n] = $3
	bytes[n] = "null"; allocs[n] = "null"
	for (i = 4; i < NF; i++) {
		if ($(i + 1) == "B/op") bytes[n] = $i
		if ($(i + 1) == "allocs/op") allocs[n] = $i
	}
	n++
}
END {
	printf "{\n  \"suite\": \"analysis\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", go_version
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			names[i], iters[i], ns[i], bytes[i], allocs[i], (i < n - 1 ? "," : "")
	}
	printf "  ]\n}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
