#!/bin/sh
# Record the federation scrape benchmarks into BENCH_federate.json so the
# wire cost of fleet-scale federation is tracked across commits (see
# ISSUE 9). BenchmarkFederateScrape stands up 100 simulated collector
# endpoints behind one server and measures a steady-state scrape round
# where a single endpoint changed — once over the binary LIFP /delta
# protocol, once forced through full-JSON documents. Acceptance floor:
#
#   - delta scraping must move >= 10x fewer body bytes per round than
#     full-JSON scraping (derived field delta_bytes_reduction).
#
# wire_B/op is total response body bytes fetched per scrape round (as
# counted by the federator's own per-endpoint byte counters, i.e. what
# actually crossed the wire, gzip included); p99_ms is the
# 99th-percentile per-endpoint scrape latency; bytes_per_sec is the
# steady-state delta-path wire rate implied by one round per interval.
#
# Usage: scripts/bench_federate.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_federate.json}"

raw=$(go test -run '^$' \
	-bench 'BenchmarkFederateScrape' \
	-benchtime 30x -count 3 ./internal/federate/)

printf '%s\n' "$raw" | awk -v go_version="$(go env GOVERSION)" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	# -count N repeats each benchmark; keep the best (min ns/op) run.
	keep = 0
	if (name in best) {
		if ($3 + 0 < best[name] + 0) { keep = 1 }
	} else {
		names[n++] = name; keep = 1
		wireb[name] = "null"; p99[name] = "null"
	}
	if (keep) {
		best[name] = $3; iters[name] = $2
		for (i = 4; i < NF; i++) {
			if ($(i + 1) == "wire_B/op") wireb[name] = $i
			if ($(i + 1) == "p99_ms") p99[name] = $i
		}
	}
}
END {
	printf "{\n  \"suite\": \"federate\",\n  \"go\": \"%s\",\n  \"endpoints\": 100,\n  \"benchmarks\": [\n", go_version
	for (i = 0; i < n; i++) {
		name = names[i]
		printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"wire_bytes_per_round\": %s, \"p99_scrape_ms\": %s}%s\n", \
			name, iters[name], best[name], wireb[name], p99[name], (i < n - 1 ? "," : "")
	}
	printf "  ],\n  \"derived\": {\n"
	dns = best["BenchmarkFederateScrape/delta"]
	db = wireb["BenchmarkFederateScrape/delta"]
	jb = wireb["BenchmarkFederateScrape/json"]
	printf "    \"delta_bytes_reduction\": %.1f,\n", jb / db
	printf "    \"delta_wire_bytes_per_round\": %.0f,\n", db
	printf "    \"json_wire_bytes_per_round\": %.0f,\n", jb
	printf "    \"delta_bytes_per_sec\": %.0f,\n", db * 1e9 / dns
	printf "    \"delta_p99_scrape_ms\": %s,\n", p99["BenchmarkFederateScrape/delta"]
	printf "    \"json_p99_scrape_ms\": %s\n", p99["BenchmarkFederateScrape/json"]
	printf "  }\n}\n"
}' > "$out"

echo "wrote $out:"
cat "$out"
