module loadimb

go 1.22
