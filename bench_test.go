// Package loadimb's root benchmark harness regenerates every table and
// figure of the paper's evaluation (Section 4) plus the ablation
// experiments of DESIGN.md. Each benchmark prints, once, the artifact it
// regenerates — run with
//
//	go test -bench=. -benchmem
//
// and compare the output against the published values recorded in
// EXPERIMENTS.md. The b.N loop then measures the cost of the analysis
// itself.
package loadimb_test

import (
	"fmt"
	"sync"
	"testing"

	"loadimb/internal/apps"
	"loadimb/internal/baseline"
	"loadimb/internal/cfd"
	"loadimb/internal/cluster"
	"loadimb/internal/core"
	"loadimb/internal/diagnose"
	"loadimb/internal/fit"
	"loadimb/internal/monitor"
	"loadimb/internal/paper"
	"loadimb/internal/pattern"
	"loadimb/internal/repair"
	"loadimb/internal/report"
	"loadimb/internal/search"
	"loadimb/internal/stats"
	"loadimb/internal/temporal"
	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

// printOnce guards the one-time artifact dumps so repeated benchmark
// iterations do not flood the output.
var printOnce sync.Map

func dumpOnce(b *testing.B, key, artifact string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n--- %s ---\n%s\n", key, artifact)
	}
}

func reconstructedCube(b *testing.B) *trace.Cube {
	b.Helper()
	cube, err := workload.ReconstructCube()
	if err != nil {
		b.Fatal(err)
	}
	return cube
}

func analyze(b *testing.B, cube *trace.Cube) *core.Analysis {
	b.Helper()
	a, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkTable1 regenerates Table 1: the wall clock time of each loop
// and its breakdown by activity, from the reconstructed case-study cube.
func BenchmarkTable1(b *testing.B) {
	cube := reconstructedCube(b)
	a := analyze(b, cube)
	dumpOnce(b, "Table 1 (paper: loop 1 heaviest, 19.051 s)", report.Table1(a.Profile))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewProfile(cube); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the indices of dispersion ID_ij.
func BenchmarkTable2(b *testing.B) {
	cube := reconstructedCube(b)
	a := analyze(b, cube)
	dumpOnce(b, "Table 2 (paper: sync on loop 5 = 0.30571)", report.Table2(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Dispersions(cube, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3: the activity view (ID_A, SID_A).
func BenchmarkTable3(b *testing.B) {
	cube := reconstructedCube(b)
	a := analyze(b, cube)
	dumpOnce(b, "Table 3 (paper: sync ID_A 0.15559, SID_A 0.00016)", report.Table3(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ActivityView(cube, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table 4: the code-region view (ID_C, SID_C).
func BenchmarkTable4(b *testing.B) {
	cube := reconstructedCube(b)
	a := analyze(b, cube)
	dumpOnce(b, "Table 4 (paper: loop 6 ID_C 0.13734; loop 1 SID_C 0.01311)", report.Table4(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CodeRegionView(cube, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1: the banded per-processor
// computation-time patterns (paper: 5/16 upper on loop 4, 11/16 lower on
// loop 6).
func BenchmarkFigure1(b *testing.B) {
	cube := reconstructedCube(b)
	d, err := pattern.New(cube, "computation", pattern.Options{})
	if err != nil {
		b.Fatal(err)
	}
	up4, _ := d.Count(3, pattern.BandUpper)
	lo6, _ := d.Count(5, pattern.BandLower)
	dumpOnce(b, fmt.Sprintf("Figure 1 (loop 4 upper: %d/16, loop 6 lower: %d/16)", up4, lo6), d.ASCII())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pattern.New(cube, "computation", pattern.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: the point-to-point patterns
// (paper: only loops 3-6 perform the activity).
func BenchmarkFigure2(b *testing.B) {
	cube := reconstructedCube(b)
	d, err := pattern.New(cube, "point-to-point", pattern.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dumpOnce(b, "Figure 2 (four rows: loops 3-6)", d.ASCII())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pattern.New(cube, "point-to-point", pattern.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClustering regenerates the Section 4 k-means partition
// (paper: {loops 1, 2} vs {loops 3..7}).
func BenchmarkClustering(b *testing.B) {
	cube := reconstructedCube(b)
	a := analyze(b, cube)
	dumpOnce(b, "Clustering (paper: {1,2} vs {3..7})", fmt.Sprintf("%v", a.Clusters))
	points := a.Profile.ActivityVectors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, 2, cluster.Options{Init: cluster.InitFirstK}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessorView regenerates the Section 4 processor-view
// findings (qualitative: the published exact values depend on the
// unpublished t_ijp cube).
func BenchmarkProcessorView(b *testing.B) {
	cube := reconstructedCube(b)
	view, err := core.NewProcessorView(cube, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dumpOnce(b, "Processor view (paper: proc 1 most frequent, proc 2 longest — qualitative)",
		fmt.Sprintf("most frequently imbalanced: %d; longest imbalanced: %d",
			view.MostFrequentlyImbalanced, view.LongestImbalanced))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewProcessorView(cube, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCFDRun regenerates experiment S2: a fresh instrumented run of
// the simulated CFD program and its headline findings, checked for
// qualitative agreement with the paper in examples/cfdstudy.
func BenchmarkCFDRun(b *testing.B) {
	cfg := cfd.Defaults()
	cfg.GridX, cfg.GridY, cfg.Iterations = 64, 64, 4 // benchable size
	res, err := cfd.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a := analyze(b, res.Cube)
	dumpOnce(b, "S2: simulated CFD run", report.Summary(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfd.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexAblation regenerates experiment S1: how the choice of the
// index of dispersion changes the tuning-candidate ranking relative to
// the paper's Euclidean index, on the case-study cube.
func BenchmarkIndexAblation(b *testing.B) {
	cube := reconstructedCube(b)
	ref, err := core.CodeRegionView(cube, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	refScores := make([]float64, len(ref))
	for i, r := range ref {
		refScores[i] = r.SID
	}
	var out string
	for _, idx := range stats.Indices() {
		view, err := core.CodeRegionView(cube, core.Options{Index: idx})
		if err != nil {
			b.Fatal(err)
		}
		scores := make([]float64, len(view))
		for i, r := range view {
			scores[i] = r.SID
		}
		tau, err := baseline.Agreement(refScores, scores)
		if err != nil {
			b.Fatal(err)
		}
		out += fmt.Sprintf("%-10s tau vs euclidean: %+.2f\n", idx.Name(), tau)
	}
	dumpOnce(b, "S1: index-of-dispersion ablation (region ranking agreement)", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, idx := range stats.Indices() {
			if _, err := core.CodeRegionView(cube, core.Options{Index: idx}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAggregationAblation compares the paper's weighted-average
// aggregation of the ID_ij against unweighted mean and max alternatives:
// does the weighting change which loop is flagged?
func BenchmarkAggregationAblation(b *testing.B) {
	cube := reconstructedCube(b)
	cells, err := core.Dispersions(cube, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	agg := func(kind string) []float64 {
		out := make([]float64, cube.NumRegions())
		for i := range out {
			var vals, weights []float64
			for j := range cells[i] {
				if !cells[i][j].Defined {
					continue
				}
				w, err := cube.CellTime(i, j)
				if err != nil {
					b.Fatal(err)
				}
				vals = append(vals, cells[i][j].ID)
				weights = append(weights, w)
			}
			switch kind {
			case "weighted":
				v, err := stats.WeightedMean(vals, weights)
				if err != nil {
					b.Fatal(err)
				}
				out[i] = v
			case "unweighted":
				out[i] = stats.Mean(vals)
			case "max":
				out[i] = stats.Max.Of(vals)
			}
		}
		return out
	}
	var report string
	for _, kind := range []string{"weighted", "unweighted", "max"} {
		scores := agg(kind)
		best, bestVal := 0, scores[0]
		for i, v := range scores {
			if v > bestVal {
				best, bestVal = i, v
			}
		}
		report += fmt.Sprintf("%-10s aggregation flags loop %d (%.5f)\n", kind, best+1, bestVal)
	}
	dumpOnce(b, "Ablation: ID_C aggregation rule (paper: weighted average)", report)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg("weighted")
	}
}

// BenchmarkScalingAblation compares the raw indices with the scaled
// indices: the paper's key device for suppressing imbalanced-but-cheap
// candidates (synchronization at 0.1% of the program).
func BenchmarkScalingAblation(b *testing.B) {
	cube := reconstructedCube(b)
	a := analyze(b, cube)
	rawBest, scaledBest := 0, 0
	for j, s := range a.Activities {
		if s.ID > a.Activities[rawBest].ID {
			rawBest = j
		}
		if s.SID > a.Activities[scaledBest].SID {
			scaledBest = j
		}
	}
	dumpOnce(b, "Ablation: raw vs scaled activity index (paper: raw flags sync, scaled flags computation)",
		fmt.Sprintf("raw ID_A flags %q; scaled SID_A flags %q",
			a.Activities[rawBest].Name, a.Activities[scaledBest].Name))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ActivityView(cube, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInitAblation compares k-means initializations on the loop
// vectors: first-k seeding reproduces the published partition; farthest-
// point with Hartigan refinement finds a strictly lower-SSE partition.
func BenchmarkInitAblation(b *testing.B) {
	cube := reconstructedCube(b)
	a := analyze(b, cube)
	points := a.Profile.ActivityVectors()
	firstK, err := cluster.KMeans(points, 2, cluster.Options{Init: cluster.InitFirstK})
	if err != nil {
		b.Fatal(err)
	}
	refined, err := cluster.KMeans(points, 2, cluster.Options{Init: cluster.InitFarthest, Refine: true})
	if err != nil {
		b.Fatal(err)
	}
	dumpOnce(b, "Ablation: k-means initialization sensitivity",
		fmt.Sprintf("first-k (paper):    groups %v, SSE %.2f\nrefined (better):   groups %v, SSE %.2f",
			firstK.Groups(), firstK.Inertia, refined.Groups(), refined.Inertia))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, 2, cluster.Options{Init: cluster.InitFarthest, Refine: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines regenerates the baseline-comparison view: which loop
// each contemporaneous metric flags on the case-study cube, versus the
// paper's choice.
func BenchmarkBaselines(b *testing.B) {
	cube := reconstructedCube(b)
	var out string
	for _, m := range baseline.Metrics() {
		ranked, err := baseline.RankRegions(cube, m)
		if err != nil {
			b.Fatal(err)
		}
		out += fmt.Sprintf("%-22s flags %s (%.4g)\n", m.Name(), ranked[0].Name, ranked[0].Score)
	}
	loss, err := baseline.CriticalPathLoss(cube)
	if err != nil {
		b.Fatal(err)
	}
	out += fmt.Sprintf("critical-path loss: %.2f%% of the program wall clock\n", loss*100)
	dumpOnce(b, "Baselines (paper's SID flags loop 1)", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.RankRegions(cube, baseline.ImbalanceTime); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipeline measures the complete methodology end to end on
// cubes of growing size, the scalability view a tool integrator cares
// about.
func BenchmarkFullPipeline(b *testing.B) {
	for _, size := range []struct{ n, k, p int }{
		{7, 4, 16}, {32, 8, 64}, {128, 8, 256},
	} {
		b.Run(fmt.Sprintf("N%dxK%dxP%d", size.n, size.k, size.p), func(b *testing.B) {
			spec := workload.Uniform(size.n, size.k, size.p)
			spec.Profile = workload.RandomProfile{Seed: 11}
			spec.Severity = 0.4
			cube, err := workload.Synthesize(spec)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(cube, core.AnalyzeOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReconstruction measures building the case-study cube from the
// published marginals.
func BenchmarkReconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.ReconstructCube(); err != nil {
			b.Fatal(err)
		}
	}
}

// Compile-time use of the paper package keeps the published constants in
// the benchmark binary for cross-checks.
var _ = paper.ProgramTime

// BenchmarkThresholdSearch contrasts the Paradyn-style hierarchical
// threshold search (the related-work diagnosis approach) with the paper's
// methodology on the case-study cube: what each flags and how many
// hypotheses the search evaluates.
func BenchmarkThresholdSearch(b *testing.B) {
	cube := reconstructedCube(b)
	out, err := search.Search(cube, search.Config{})
	if err != nil {
		b.Fatal(err)
	}
	summary := fmt.Sprintf("hypotheses tested: %d (exhaustive: %d)\n",
		out.HypothesesTested, search.ExhaustiveHypotheses(cube))
	for _, f := range out.Findings {
		switch f.Level {
		case search.ActivityLevel:
			summary += fmt.Sprintf("  activity %d at %.0f%% of program\n", f.Activity, f.Value*100)
		case search.RegionLevel:
			summary += fmt.Sprintf("  activity %d heavy in region %d (%.0f%% of the activity)\n",
				f.Activity, f.Region+1, f.Value*100)
		case search.ProcessorLevel:
			summary += fmt.Sprintf("  processor %d at %.1fx the mean in region %d activity %d\n",
				f.Proc, f.Value, f.Region+1, f.Activity)
		}
	}
	summary += "note: the search never measures synchronization (below threshold),\nwhile the methodology reports it as most imbalanced and then scales it away.\n"
	dumpOnce(b, "Baseline: Paradyn-style threshold search", summary)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Search(cube, search.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMasterWorker regenerates the scheduling ablation: the
// dispersion index quantifying what dynamic scheduling repairs.
func BenchmarkMasterWorker(b *testing.B) {
	var out string
	for _, schedule := range []apps.Schedule{apps.StaticSchedule, apps.DynamicSchedule} {
		cfg := apps.DefaultMasterWorker()
		cfg.Shape = apps.TriangularTasks
		cfg.Schedule = schedule
		res, err := apps.MasterWorker(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cells, err := core.Dispersions(res.Cube, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		i := res.Cube.RegionIndex("work")
		j := res.Cube.ActivityIndex("computation")
		out += fmt.Sprintf("%-8s makespan %.3f s, work dispersion ID %.5f\n",
			schedule, res.Makespan, cells[i][j].ID)
	}
	dumpOnce(b, "Apps: master-worker static vs dynamic", out)
	cfg := apps.DefaultMasterWorker()
	cfg.Schedule = apps.DynamicSchedule
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apps.MasterWorker(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWavefront regenerates the structural-imbalance case: pipeline
// fill/drain waiting flagged by the methodology.
func BenchmarkWavefront(b *testing.B) {
	cfg := apps.DefaultWavefront()
	res, err := apps.Wavefront(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a := analyze(b, res.Cube)
	dumpOnce(b, "Apps: wavefront sweep", report.Summary(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apps.Wavefront(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBytesAnalysis runs the methodology on counting parameters
// (communication bytes) from a CFD run — the paper's measurement model
// beyond timings.
func BenchmarkBytesAnalysis(b *testing.B) {
	cfg := cfd.Defaults()
	cfg.GridX, cfg.GridY, cfg.Iterations = 64, 64, 4
	res, err := cfd.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a := analyze(b, res.BytesCube)
	var out string
	for _, r := range a.Regions {
		if r.Defined {
			out += fmt.Sprintf("%-8s byte-volume ID_C %.5f\n", r.Name, r.ID)
		}
	}
	dumpOnce(b, "Counting parameters: byte-volume dispersion per region", out)
	cube := res.BytesCube
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(cube, core.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterize regenerates the workload-characterization
// extension: distribution fits of activity burst durations from a CFD
// run's event trace.
func BenchmarkCharacterize(b *testing.B) {
	cfg := cfd.Defaults()
	cfg.GridX, cfg.GridY, cfg.Iterations = 64, 64, 6
	res, err := cfd.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	durations := res.Log.Durations("computation")
	best, err := fit.BestFit(durations)
	if err != nil {
		b.Fatal(err)
	}
	dumpOnce(b, "Characterization: CFD computation bursts",
		fmt.Sprintf("%d bursts, best fit %s (KS %.4f)", len(durations), best.Model.String(), best.KS))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.BestFit(durations); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuningLoop regenerates the full Section 2 cycle — identify,
// localize, repair, verify — automated on the simulated CFD program.
func BenchmarkTuningLoop(b *testing.B) {
	cfg := cfd.Defaults()
	cfg.GridX, cfg.GridY, cfg.Iterations = 64, 64, 4
	cfg.Imbalance = 0.6
	res, err := repair.Loop(cfg, repair.Options{Rounds: 4})
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for _, s := range res.Steps {
		out += fmt.Sprintf("round %d: %s SID %.5f, program %.3f s (%s)\n",
			s.Round, s.Candidate, s.CandidateSID, s.ProgramTime, s.Action)
	}
	out += fmt.Sprintf("total speedup %.3fx, converged=%v\n", res.TotalSpeedup(), res.Converged)
	dumpOnce(b, "Tuning loop (Section 2's identify-localize-repair-verify)", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repair.Loop(cfg, repair.Options{Rounds: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMR regenerates the time-varying imbalance case: an AMR-style
// moving refinement feature whose per-phase regions let the methodology
// localize the shifting imbalance.
func BenchmarkAMR(b *testing.B) {
	cfg := apps.DefaultAMR()
	res, err := apps.AMR(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a := analyze(b, res.Cube)
	var out string
	for i, r := range a.Regions {
		best := -1
		bestVal := 0.0
		for p, d := range a.Processors.ByRegion[i] {
			if d.Defined && (best == -1 || d.ID > bestVal) {
				best, bestVal = p, d.ID
			}
		}
		out += fmt.Sprintf("%-8s ID_C %.5f, most dissimilar processor %d\n", r.Name, r.ID, best)
	}
	dumpOnce(b, "Apps: AMR moving feature (per-phase localization)", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apps.AMR(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingStudy sweeps the processor count of the simulated CFD
// program and reports how the tuning candidate's scaled index behaves as
// the machine grows (weak scaling of the decomposition skew).
func BenchmarkScalingStudy(b *testing.B) {
	var out string
	for _, procs := range []int{4, 8, 16, 32, 64} {
		cfg := cfd.Defaults()
		cfg.Procs = procs
		cfg.GridX, cfg.GridY, cfg.Iterations = 64, 4*procs, 4
		res, err := cfd.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a := analyze(b, res.Cube)
		cand := a.Regions[a.TuningCandidates(core.MaxCriterion{})[0].Pos]
		out += fmt.Sprintf("P=%-3d program %8.3f s, candidate %s SID_C %.5f\n",
			procs, res.Cube.ProgramTime(), cand.Name, cand.SID)
	}
	dumpOnce(b, "Scaling study: candidate SID_C vs processor count", out)
	cfg := cfd.Defaults()
	cfg.Procs = 32
	cfg.GridX, cfg.GridY, cfg.Iterations = 64, 128, 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfd.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemporalFold is the bench smoke for the shared windowing
// engine: folding a full CFD event trace into per-window busy vectors is
// the inner loop of the live collector, the federated merge, and the
// offline trajectory, so a regression here slows all three pipelines.
func BenchmarkTemporalFold(b *testing.B) {
	cfg := cfd.Defaults()
	cfg.GridX, cfg.GridY, cfg.Iterations = 128, 128, 8
	res, err := cfd.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	window := res.Log.Span() / 64
	ser, err := temporal.FoldLog(res.Log, temporal.Options{Window: window})
	if err != nil {
		b.Fatal(err)
	}
	dumpOnce(b, "Temporal fold (shared windowing engine)",
		fmt.Sprintf("%d events -> %d windows of %.3f s over %d procs\n",
			res.Log.Len(), len(ser.Windows), window, ser.Procs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.FoldLog(res.Log, temporal.Options{Window: window}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundedScrapeLongRun measures the live monitor's per-scrape
// cost after a short (10k windows) and a very long (1M windows) looping
// run. With the default window cap the two must be within a small factor
// of each other — the bounded-retention guarantee that scraping a
// forever-looping workload stays O(cap) in time and memory no matter how
// long it has been running. Before the cap, the 1M case held a hundred
// times the state and every scrape's segmenter pass walked all of it.
func BenchmarkBoundedScrapeLongRun(b *testing.B) {
	const window = 0.001
	for _, n := range []int{10_000, 1_000_000} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			col := monitor.NewCollector(monitor.Options{Window: window})
			// Preload the run history, snapshotting periodically the way a
			// scraper would, so retention and the streaming segmenter are in
			// steady state when measurement starts.
			for w := 0; w < n; w++ {
				t0 := float64(w) * window
				col.Record(trace.Event{
					Rank: w % 4, Region: "loop", Activity: "comp",
					Start: t0, End: t0 + window*0.4,
				})
				if (w+1)%10_000 == 0 {
					col.Snapshot()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One incremental scrape: one new window's events arrive,
				// then the collector folds and republish-es.
				t0 := float64(n+i) * window
				col.Record(trace.Event{
					Rank: i % 4, Region: "loop", Activity: "comp",
					Start: t0, End: t0 + window*0.4,
				})
				col.Snapshot()
			}
		})
	}
}

// BenchmarkTemporalPhases regenerates the temporal-analysis experiment:
// segment the AMR moving-feature workload's computation trajectory into
// phases and compare each phase's ID_P against the whole-run index — the
// paper's Section 4 point that whole-run metrics hide the time-varying
// imbalance the refinement feature causes.
func BenchmarkTemporalPhases(b *testing.B) {
	cfg := apps.DefaultAMR()
	res, err := apps.AMR(cfg)
	if err != nil {
		b.Fatal(err)
	}
	window := res.Log.Span() / 48
	opts := temporal.Options{Window: window, Activities: []string{"computation"}}
	ser, err := temporal.FoldLog(res.Log, opts)
	if err != nil {
		b.Fatal(err)
	}
	phases := temporal.Segment(ser.Stats(), 0)
	reports, err := temporal.AnalyzePhases(res.Log, phases, core.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Whole-run ID_P over per-processor totals, for contrast.
	totals := make([]float64, res.Cube.NumProcs())
	for p := range totals {
		v, err := res.Cube.ProcTotalTime(p)
		if err != nil {
			b.Fatal(err)
		}
		totals[p] = v
	}
	wholeID, err := stats.EuclideanFromBalance(totals)
	if err != nil {
		b.Fatal(err)
	}
	wholeA := analyze(b, res.Cube)
	compID := func(a *core.Analysis) float64 {
		for _, s := range a.Activities {
			if s.Name == "computation" && s.Defined {
				return s.ID
			}
		}
		return 0
	}
	out := fmt.Sprintf("whole run: ID_P %.5f, computation ID_A %.5f over %d procs; %d phases (window %.3f s)\n",
		wholeID, compID(wholeA), len(totals), len(reports), window)
	for k, rep := range reports {
		line := fmt.Sprintf("phase %d [%6.3f, %6.3f) %-5s mean window ID %.5f",
			k+1, rep.Start, rep.End, rep.Label, rep.MeanID)
		if rep.IDP != nil {
			line += fmt.Sprintf(", ID_P %.5f", *rep.IDP)
		}
		if rep.Analysis != nil {
			line += fmt.Sprintf(", computation ID_A %.5f", compID(rep.Analysis))
		}
		out += line + "\n"
	}
	dumpOnce(b, "Temporal phases: AMR per-phase ID_P vs whole-run index", out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ser, err := temporal.FoldLog(res.Log, opts)
		if err != nil {
			b.Fatal(err)
		}
		phases := temporal.Segment(ser.Stats(), 0)
		if _, err := temporal.AnalyzePhases(res.Log, phases, core.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSegment measures the live monitor's incremental phase
// detection: one iteration is one appended window, with the segmentation
// queried every 64 windows (a scrape interval's worth). The fixed-penalty
// variant is the amortized-constant hot path; the automatic-penalty
// variant re-derives the penalty per query and re-runs the pruned DP when
// it moves, so it bounds the cost of the default configuration.
func BenchmarkStreamSegment(b *testing.B) {
	// A phase-structured trajectory with ripple: alternating quiet and hot
	// levels every 128 windows, the shape the collector feeds the
	// segmenter on a long-running workload.
	const windows = 2048
	traj := make([]temporal.WindowStat, windows)
	for i := range traj {
		level := 0.1
		if (i/128)%2 == 1 {
			level = 0.5
		}
		id := level + 0.004*float64(i%7)
		traj[i] = temporal.WindowStat{Index: i, Start: float64(i), End: float64(i + 1),
			Events: 1, Busy: 1, ID: &id}
	}
	seg := temporal.NewStreamSegmenter(0)
	for _, ws := range traj {
		seg.Append(ws)
	}
	dumpOnce(b, "Streaming segmentation (live monitor hot path)",
		fmt.Sprintf("%d windows -> %d phases (auto penalty)\n", windows, len(seg.Phases())))
	for _, bc := range []struct {
		name    string
		penalty float64
	}{
		{"append-fixed", 0.05},
		{"append-auto", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			seg := temporal.NewStreamSegmenter(bc.penalty)
			fed := 0
			for i := 0; i < b.N; i++ {
				if fed == windows {
					seg = temporal.NewStreamSegmenter(bc.penalty)
					fed = 0
				}
				seg.Append(traj[fed])
				fed++
				if fed%64 == 0 && len(seg.Phases()) == 0 {
					b.Fatal("no phases on a non-empty trajectory")
				}
			}
		})
	}
}

// BenchmarkDiagnose measures the automatic diagnosis engine on a
// 256-rank, 8-phase synthetic series — a federated-scale input — from
// fingerprinting through clustering to scored findings. The live monitor
// recomputes the report once per fold generation (memoized on the
// snapshot), so one iteration here bounds the marginal cost a scrape of
// /diagnose.json can add; it must stay well under a scrape interval.
func BenchmarkDiagnose(b *testing.B) {
	const (
		procs        = 256
		phaseCount   = 8
		winsPerPhase = 16
		activities   = 4
		regions      = 6
	)
	actNames := make([]string, activities)
	for a := range actNames {
		actNames[a] = fmt.Sprintf("act%d", a)
	}
	regNames := make([]string, regions)
	for r := range regNames {
		regNames[r] = fmt.Sprintf("reg%d", r)
	}
	ser := &temporal.Series{Window: 1, Procs: procs}
	var phases []temporal.Phase
	for ph := 0; ph < phaseCount; ph++ {
		first := ph * winsPerPhase
		for w := 0; w < winsPerPhase; w++ {
			v := temporal.WindowVector{
				Index:       first + w,
				Events:      procs,
				ProcSeconds: make([]float64, procs),
				PerActivity: make(map[string][]float64, activities),
				PerRegion:   make(map[string][]float64, regions),
			}
			for _, name := range actNames {
				v.PerActivity[name] = make([]float64, procs)
			}
			for _, name := range regNames {
				v.PerRegion[name] = make([]float64, procs)
			}
			for p := 0; p < procs; p++ {
				// Deterministic utilization with phase-dependent mix and
				// two individually diverged stragglers: each overworks a
				// different magnitude, so they end up isolated rather
				// than forming a straggler cohort of their own.
				base := 0.1 + 0.01*float64((p+ph)%7)
				extra := 0.0
				if ph%2 == 1 {
					switch p {
					case 17:
						extra = 0.4
					case 123:
						extra = 0.7
					}
				}
				v.ProcSeconds[p] = float64(activities)*base + extra
				for a, name := range actNames {
					t := base
					if a == ph%activities {
						t += extra
					}
					v.PerActivity[name][p] = t
				}
				for r, name := range regNames {
					if r == (p+ph)%regions {
						v.PerRegion[name][p] = v.ProcSeconds[p]
					}
				}
			}
			ser.Windows = append(ser.Windows, v)
		}
		phases = append(phases, temporal.Phase{
			FirstWindow: first, LastWindow: first + winsPerPhase - 1,
			Start: float64(first), End: float64(first + winsPerPhase),
			Windows: winsPerPhase, Label: temporal.LabelHot,
		})
	}
	rep := diagnose.Diagnose(ser, phases, diagnose.Options{})
	dumpOnce(b, "Automatic diagnosis (256 ranks, 8 phases)",
		fmt.Sprintf("%d dimensions, %d findings, top: %s\n",
			len(rep.Dimensions), len(rep.Findings), rep.Findings[0].Summary))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := diagnose.Diagnose(ser, phases, diagnose.Options{})
		if len(rep.Findings) == 0 {
			b.Fatal("no findings on the straggler-banded series")
		}
	}
}

// BenchmarkStragglerDiagnosis regenerates the injected-straggler study
// of EXPERIMENTS.md ("Automatic diagnosis"): an AMR run with one rank
// persistently slowed, where whole-run ID_P reads zero (barriers
// equalize totals) and the divergence ranking must still name the
// culprit first.
func BenchmarkStragglerDiagnosis(b *testing.B) {
	cfg := apps.DefaultAMR()
	cfg.Straggler = 2
	cfg.StragglerFactor = 6
	res, err := apps.AMR(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := temporal.Options{
		Window:      res.Log.Span() / 48,
		PerActivity: true,
		PerRegion:   true,
	}
	ser, err := temporal.FoldLog(res.Log, opts)
	if err != nil {
		b.Fatal(err)
	}
	phases := temporal.Segment(ser.Stats(), 0)
	rep := diagnose.Diagnose(ser, phases, diagnose.Options{})
	if len(rep.Findings) == 0 {
		b.Fatal("no findings on the straggler AMR run")
	}
	totals := make([]float64, res.Cube.NumProcs())
	for p := range totals {
		v, err := res.Cube.ProcTotalTime(p)
		if err != nil {
			b.Fatal(err)
		}
		totals[p] = v
	}
	wholeID, err := stats.EuclideanFromBalance(totals)
	if err != nil {
		b.Fatal(err)
	}
	out := fmt.Sprintf("whole run: ID_P %.5f over %d procs (straggler rank %d at %gx); %d findings\n",
		wholeID, len(totals), cfg.Straggler, cfg.StragglerFactor, len(rep.Findings))
	for i, f := range rep.Findings {
		if i == 3 {
			out += fmt.Sprintf("  ... (%d more)\n", len(rep.Findings)-i)
			break
		}
		out += "  " + f.Summary + "\n"
	}
	culprit := 0
	for _, f := range rep.Findings {
		if f.Rank == cfg.Straggler {
			culprit++
		}
	}
	out += fmt.Sprintf("straggler rank %d holds finding #1 (score %.1f) and %d of %d findings\n",
		cfg.Straggler, rep.Findings[0].Score, culprit, len(rep.Findings))
	dumpOnce(b, "Straggler diagnosis: AMR with one slowed rank", out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ser, err := temporal.FoldLog(res.Log, opts)
		if err != nil {
			b.Fatal(err)
		}
		phases := temporal.Segment(ser.Stats(), 0)
		if rep := diagnose.Diagnose(ser, phases, diagnose.Options{}); len(rep.Findings) == 0 {
			b.Fatal("no findings on the straggler AMR run")
		}
	}
}
