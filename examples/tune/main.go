// tune drives the paper's complete performance-tuning cycle on the
// simulated CFD program: identification and localization (the
// methodology), repair (damping the decomposition skew behind the
// computation imbalance), and verification (comparing before/after
// measurement cubes) — Section 2's iterative process, automated.
package main

import (
	"fmt"
	"log"

	"loadimb/internal/cfd"
	"loadimb/internal/repair"
)

func main() {
	log.SetFlags(0)

	cfg := cfd.Defaults()
	cfg.Imbalance = 0.6 // start badly imbalanced
	fmt.Printf("tuning the simulated CFD program (starting skew %.2f)\n\n", cfg.Imbalance)

	res, err := repair.Loop(cfg, repair.Options{Rounds: 6, TargetSID: 0.012})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-10s %12s %14s %9s  %s\n",
		"round", "candidate", "SID_C", "program (s)", "speedup", "action")
	for _, s := range res.Steps {
		fmt.Printf("%-6d %-10s %12.5f %14.3f %9.3f  %s\n",
			s.Round, s.Candidate, s.CandidateSID, s.ProgramTime, s.Speedup, s.Action)
	}
	fmt.Printf("\ntotal speedup: %.3fx", res.TotalSpeedup())
	if res.Converged {
		fmt.Printf(" (converged: candidate SID below target)")
	}
	fmt.Println()

	// Independent verification of the first-to-last improvement.
	first, err := cfd.Run(func() cfd.Config { c := cfg; return c }())
	if err != nil {
		log.Fatal(err)
	}
	improved, diff, err := repair.Verify(first.Cube, res.Final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: improved=%v, program time %.3f s -> %.3f s\n",
		improved, diff.ProgramBefore, diff.ProgramAfter)
}
