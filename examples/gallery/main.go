// gallery runs the methodology across a variety of simulated parallel
// programs beyond the CFD study — the paper's future-work direction of
// analyzing "a large variety of scientific programs" — and on counting
// parameters (communication bytes) as well as timings:
//
//  1. a master-worker task farm, static vs dynamic scheduling (the
//     methodology quantifies how much dynamic scheduling repairs),
//  2. a pipelined wavefront sweep (structural imbalance at the pipeline
//     boundaries),
//  3. the CFD program's byte counters (is the communication *volume*
//     imbalanced, or only the time?).
package main

import (
	"fmt"
	"log"

	"loadimb/internal/apps"
	"loadimb/internal/cfd"
	"loadimb/internal/core"
	"loadimb/internal/mpi"
	"loadimb/internal/report"
	"loadimb/internal/trace"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== 1. Master-worker task farm: static vs dynamic scheduling ===")
	for _, schedule := range []apps.Schedule{apps.StaticSchedule, apps.DynamicSchedule} {
		cfg := apps.DefaultMasterWorker()
		cfg.Shape = apps.TriangularTasks // triangular-solve costs: worst case for static blocks
		cfg.Schedule = schedule
		res, err := apps.MasterWorker(cfg)
		if err != nil {
			log.Fatal(err)
		}
		id := workDispersion(res.Cube)
		fmt.Printf("\n%s scheduling: makespan %.3f s, checksum %.4f\n", schedule, res.Makespan, res.Checksum)
		fmt.Printf("  computation dispersion in the work region: ID = %.5f\n", id)
	}
	fmt.Println("\nthe dispersion index quantifies exactly what dynamic scheduling buys.")

	fmt.Println("\n=== 2. Wavefront sweep: structural pipeline imbalance ===")
	wf, err := apps.Wavefront(apps.DefaultWavefront())
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.Analyze(wf.Cube, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(report.Table3(a))
	fmt.Print(report.Summary(a))
	fmt.Println("\nthe p2p imbalance here is pipeline fill/drain — structural, not a work-distribution bug;")
	fmt.Println("the processor view shows the boundary ranks as the dissimilar ones.")

	fmt.Println("\n=== 3. AMR: time-varying imbalance, localized per phase ===")
	amr, err := apps.AMR(apps.DefaultAMR())
	if err != nil {
		log.Fatal(err)
	}
	amrAnalysis, err := core.Analyze(amr.Cube, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("%-10s %10s %10s  %s\n", "phase", "ID_C", "SID_C", "most dissimilar processor")
	for i, r := range amrAnalysis.Regions {
		best, bestVal := -1, 0.0
		for p, d := range amrAnalysis.Processors.ByRegion[i] {
			if d.Defined && (best == -1 || d.ID > bestVal) {
				best, bestVal = p, d.ID
			}
		}
		fmt.Printf("%-10s %10.5f %10.5f  %d\n", r.Name, r.ID, r.SID, best)
	}
	fmt.Println("\nthe refined feature moves across the machine; per-phase regions let the")
	fmt.Println("methodology follow it — a whole-run average would blur it away.")

	fmt.Println("\n=== 4. CFD counting parameters: bytes instead of seconds ===")
	res, err := cfd.Run(cfd.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	timesView, err := core.CodeRegionView(res.Cube, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bytesView, err := core.CodeRegionView(res.BytesCube, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %14s %14s\n", "region", "ID_C (time)", "ID_C (bytes)")
	for i := range timesView {
		tv, bv := timesView[i], bytesView[i]
		b := "-"
		if bv.Defined {
			b = fmt.Sprintf("%.5f", bv.ID)
		}
		fmt.Printf("%-10s %14.5f %14s\n", tv.Name, tv.ID, b)
	}
	fmt.Println("\ntime imbalance without byte imbalance means waiting, not data volume —")
	fmt.Println("the halo exchanges move (almost) the same bytes everywhere while the")
	fmt.Println("skewed computation makes some ranks wait.")
}

func workDispersion(cube *trace.Cube) float64 {
	cells, err := core.Dispersions(cube, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	i := cube.RegionIndex("work")
	j := cube.ActivityIndex(mpi.ActComputation)
	if i < 0 || j < 0 || !cells[i][j].Defined {
		log.Fatal("work computation cell missing")
	}
	return cells[i][j].ID
}
