// Quickstart: build a measurement cube by hand, run the load-imbalance
// methodology on it and print what it finds.
//
// The scenario is the smallest interesting one: a program with two code
// regions and two activities on four processors, where one region hides a
// skewed computation.
package main

import (
	"fmt"
	"log"

	"loadimb/internal/core"
	"loadimb/internal/report"
	"loadimb/internal/trace"
)

func main() {
	log.SetFlags(0)

	// 1. Describe the measurements: t[region][activity][processor] wall
	// clock times, as an instrumented run would record them.
	cube, err := trace.NewCube(
		[]string{"assemble", "solve"},
		[]string{"computation", "communication"},
		4,
	)
	if err != nil {
		log.Fatal(err)
	}
	// "assemble" is balanced.
	for p, t := range []float64{2.0, 2.1, 1.9, 2.0} {
		must(cube.Set(0, 0, p, t))
	}
	for p, t := range []float64{0.5, 0.5, 0.5, 0.5} {
		must(cube.Set(0, 1, p, t))
	}
	// "solve" computation is skewed: processor 3 does twice the work.
	for p, t := range []float64{3.0, 3.0, 3.0, 6.0} {
		must(cube.Set(1, 0, p, t))
	}
	// The other processors wait for it in communication.
	for p, t := range []float64{3.1, 3.0, 2.9, 0.2} {
		must(cube.Set(1, 1, p, t))
	}

	// 2. Run the methodology: coarse-grain profile, dispersion indices,
	// the three views and the clustering, all in one call.
	analysis, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Read the findings.
	fmt.Print(report.Summary(analysis))
	fmt.Println()
	fmt.Println(report.Table4(analysis))

	// 4. Ask directly: which region should we tune first?
	candidates := analysis.TuningCandidates(core.MaxCriterion{})
	winner := analysis.Regions[candidates[0].Pos]
	fmt.Printf("tune %q first: scaled index of dispersion %.5f\n", winner.Name, winner.SID)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
