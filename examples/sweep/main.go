// sweep compares the paper's standardized Euclidean index against the
// alternative indices of dispersion and the baseline metrics of
// contemporaneous tools, across a parametric imbalance sweep (experiment
// S1: the index-of-dispersion ablation).
//
// For each imbalance profile and severity it builds a synthetic cube,
// scores every region with every metric, and reports (a) whether the
// metrics agree on the most imbalanced region and (b) the Kendall rank
// correlation of each metric's region ranking with the paper's SID
// ranking.
package main

import (
	"fmt"
	"log"

	"loadimb/internal/baseline"
	"loadimb/internal/core"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
	"loadimb/internal/workload"
)

// buildCube makes a 6-region cube in which the regions differ in
// imbalance severity (a gradient up to maxSeverity), in imbalance shape
// (the profile alternates with a secondary one) and — crucially — in size:
// odd regions are 20x cheaper than even ones. Size is what separates the
// metrics: the paper's SID and the absolute imbalance time discount cheap
// regions, while raw relative indices (CoV, percent imbalance) rank a
// cheap-but-skewed region first.
func buildCube(prof workload.Profile, maxSeverity float64, procs int) (*trace.Cube, error) {
	const regions = 6
	names := make([]string, regions)
	for i := range names {
		names[i] = fmt.Sprintf("region %d", i+1)
	}
	cube, err := trace.NewCube(names, []string{"computation"}, procs)
	if err != nil {
		return nil, err
	}
	second := workload.BlockProfile{High: procs / 2}
	for i := 0; i < regions; i++ {
		sev := maxSeverity * float64(i+1) / float64(regions)
		p := prof
		if i%2 == 1 {
			p = second
		}
		shares, err := p.Shares(procs, sev)
		if err != nil {
			return nil, err
		}
		size := 10.0
		if i%2 == 1 {
			size = 0.5
		}
		total := size * float64(procs)
		for q, s := range shares {
			if err := cube.Set(i, 0, q, total*s); err != nil {
				return nil, err
			}
		}
	}
	return cube, nil
}

func main() {
	log.SetFlags(0)
	const procs = 16

	profiles := []workload.Profile{
		workload.OneHotProfile{},
		workload.LinearProfile{},
		workload.BlockProfile{High: 4},
		workload.RandomProfile{Seed: 7},
	}
	severities := []float64{0.2, 0.5, 0.9}

	fmt.Println("S1: index-of-dispersion ablation — region ranking agreement with the paper's SID")
	fmt.Println()
	fmt.Printf("%-10s %-9s", "profile", "severity")
	for _, idx := range stats.Indices() {
		fmt.Printf(" %9s", idx.Name())
	}
	for _, m := range baseline.Metrics() {
		fmt.Printf(" %20s", m.Name())
	}
	fmt.Println()

	for _, prof := range profiles {
		for _, sev := range severities {
			cube, err := buildCube(prof, sev, procs)
			if err != nil {
				log.Fatal(err)
			}
			// Reference ranking: the paper's scaled Euclidean SID.
			ref, err := core.CodeRegionView(cube, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			refScores := make([]float64, len(ref))
			for i, r := range ref {
				refScores[i] = r.SID
			}
			fmt.Printf("%-10s %-9.1f", prof.Name(), sev)
			// Alternative indices of dispersion.
			for _, idx := range stats.Indices() {
				view, err := core.CodeRegionView(cube, core.Options{Index: idx})
				if err != nil {
					log.Fatal(err)
				}
				scores := make([]float64, len(view))
				for i, r := range view {
					scores[i] = r.SID
				}
				tau, err := baseline.Agreement(refScores, scores)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %9.2f", tau)
			}
			// Baseline metrics.
			for _, m := range baseline.Metrics() {
				ranked, err := baseline.RankRegions(cube, m)
				if err != nil {
					log.Fatal(err)
				}
				scores := make([]float64, len(ranked))
				for _, r := range ranked {
					scores[r.Region] = r.Score
				}
				tau, err := baseline.Agreement(refScores, scores)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %20.2f", tau)
			}
			fmt.Println()
		}
	}

	fmt.Println()
	fmt.Println("Reading: 1.00 = identical region ranking as the paper's scaled Euclidean")
	fmt.Println("index; lower values mean the metric orders the tuning candidates differently.")
}
