// cfdstudy replays the paper's full case study end-to-end, twice:
//
//  1. On the reconstructed measurement cube (exact reproduction of
//     Tables 1-4 and Figures 1-2 from the published marginals).
//  2. On a fresh run of the simulated CFD program (experiment S2:
//     simulator fidelity) — the whole pipeline from instrumented
//     execution through tracefile to analysis, checking that the
//     qualitative findings agree with the paper's.
package main

import (
	"bytes"
	"fmt"
	"log"

	"loadimb/internal/cfd"
	"loadimb/internal/core"
	"loadimb/internal/mpi"
	"loadimb/internal/pattern"
	"loadimb/internal/report"
	"loadimb/internal/tracefmt"
	"loadimb/internal/workload"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== Part 1: the published case study (reconstructed cube) ===")
	fmt.Println()
	cube, err := workload.ReconstructCube()
	if err != nil {
		log.Fatal(err)
	}
	published, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Table1(published.Profile))
	fmt.Println(report.Table2(published))
	fmt.Println(report.Table3(published))
	fmt.Println(report.Table4(published))
	for _, act := range []string{"computation", "point-to-point"} {
		d, err := pattern.New(cube, act, pattern.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(d.ASCII())
	}
	fmt.Print(report.Summary(published))

	fmt.Println()
	fmt.Println("=== Part 2: fresh run of the simulated CFD program ===")
	fmt.Println()
	res, err := cfd.Run(cfd.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("residual: %.4g -> %.4g over %d iterations\n",
		res.Residuals[0], res.Residuals[len(res.Residuals)-1], len(res.Residuals))

	// Round-trip the run through the tracefile format, as a real tool
	// chain would.
	var buf bytes.Buffer
	if err := tracefmt.WriteCube(&buf, res.Cube); err != nil {
		log.Fatal(err)
	}
	loaded, err := tracefmt.ReadCube(&buf)
	if err != nil {
		log.Fatal(err)
	}
	simulated, err := core.Analyze(loaded, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Table1(simulated.Profile))
	fmt.Print(report.Summary(simulated))

	fmt.Println()
	fmt.Println("=== Fidelity check: simulated run vs published study ===")
	check := func(name string, pub, sim string) {
		status := "AGREE"
		if pub != sim {
			status = "DIFFER"
		}
		fmt.Printf("  %-28s published %-16q simulated %-16q %s\n", name, pub, sim, status)
	}
	pp, sp := published.Profile, simulated.Profile
	check("heaviest region",
		pp.Regions[pp.HeaviestRegion].Region, sp.Regions[sp.HeaviestRegion].Region)
	check("dominant activity",
		pp.Activities[pp.DominantActivity].Activity, sp.Activities[sp.DominantActivity].Activity)
	check("p2p-heaviest region",
		pp.Regions[pp.WorstRegion[idx(cube.Activities(), mpi.ActPointToPoint)].Region].Region,
		sp.Regions[sp.WorstRegion[idx(loaded.Activities(), mpi.ActPointToPoint)].Region].Region)
	check("top tuning candidate",
		published.Regions[published.TuningCandidates(core.MaxCriterion{})[0].Pos].Name,
		simulated.Regions[simulated.TuningCandidates(core.MaxCriterion{})[0].Pos].Name)
}

func idx(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	log.Fatalf("activity %q not found in %v", want, names)
	return -1
}
