// Monitor: attach the streaming collector to a live workload, serve the
// paper's dispersion indices over HTTP while it runs, and scrape them —
// everything the imbamon daemon does, in a dozen lines of library use.
//
// The collector is a trace.Sink: every event the simulated MPI ranks
// record is folded incrementally into the measurement cube, so /metrics
// answers with up-to-date ID/SID gauges at any point of the run.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"loadimb/internal/apps"
	"loadimb/internal/monitor"
	"loadimb/internal/mpi"
	"loadimb/internal/serve"
)

func main() {
	log.SetFlags(0)

	// 1. A collector with 0.5 s temporal windows; presetting the
	// activity order keeps gauge label sets stable across scrapes.
	col := monitor.NewCollector(monitor.Options{
		Window:     0.5,
		Activities: mpi.Activities(),
	})

	// 2. Serve the monitoring endpoints on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.NewHandler(col)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (try /metrics, /cube.json, /lorenz.json)\n\n", base)

	// 3. Run a workload with the collector attached as its event sink.
	cfg := apps.DefaultMasterWorker()
	cfg.Procs = 8
	cfg.Tasks = 64
	cfg.Sink = col
	if _, err := apps.MasterWorker(cfg); err != nil {
		log.Fatal(err)
	}

	// 4. Scrape our own exposition, like a Prometheus server would.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("imbalance gauges from /metrics:")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "loadimb_sid_") ||
			strings.HasPrefix(line, "loadimb_gini") ||
			strings.HasPrefix(line, "loadimb_window_id") {
			fmt.Println("  " + line)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
