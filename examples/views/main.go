// views demonstrates the three complementary views of the fine-grain
// dissimilarity analysis — processor, activity and code region — on a
// synthetic workload with two deliberately planted problems:
//
//   - one processor with a different activity mix (found by the processor
//     view),
//   - one heavily imbalanced but cheap activity versus a mildly imbalanced
//     but expensive one (the scaled indices pick the expensive one, the
//     raw indices the cheap one — the paper's key argument for scaling).
package main

import (
	"fmt"
	"log"

	"loadimb/internal/core"
	"loadimb/internal/trace"
)

const procs = 8

func main() {
	log.SetFlags(0)
	cube := build()

	analysis, err := core.Analyze(cube, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Activity view ==")
	fmt.Printf("%-12s %8s %8s %8s\n", "activity", "ID_A", "share", "SID_A")
	for _, s := range analysis.Activities {
		if !s.Defined {
			continue
		}
		fmt.Printf("%-12s %8.5f %7.1f%% %8.5f\n", s.Name, s.ID, s.Share*100, s.SID)
	}
	rawWinner, scaledWinner := "", ""
	var rawBest, scaledBest float64
	for _, s := range analysis.Activities {
		if s.ID > rawBest {
			rawBest, rawWinner = s.ID, s.Name
		}
		if s.SID > scaledBest {
			scaledBest, scaledWinner = s.SID, s.Name
		}
	}
	fmt.Printf("\nraw index points at %q; the scaled index points at %q —\n", rawWinner, scaledWinner)
	fmt.Println("scaling filters out activities too cheap to matter (the paper's Section 4 argument).")

	fmt.Println("\n== Code region view ==")
	fmt.Printf("%-12s %8s %8s %8s\n", "region", "ID_C", "share", "SID_C")
	for _, s := range analysis.Regions {
		fmt.Printf("%-12s %8.5f %7.1f%% %8.5f\n", s.Name, s.ID, s.Share*100, s.SID)
	}

	fmt.Println("\n== Processor view ==")
	v := analysis.Processors
	for p, s := range v.Summaries {
		if len(s.MostImbalancedOn) == 0 {
			continue
		}
		regions := make([]string, len(s.MostImbalancedOn))
		for k, i := range s.MostImbalancedOn {
			regions[k] = analysis.Profile.Regions[i].Region
		}
		fmt.Printf("processor %d is the most imbalanced on %v (wall clock there: %.2f s)\n",
			p, regions, s.ImbalancedTime)
	}
	fmt.Printf("most frequently imbalanced: processor %d\n", v.MostFrequentlyImbalanced)
	fmt.Printf("imbalanced for the longest time: processor %d\n", v.LongestImbalanced)
	if v.MostFrequentlyImbalanced == oddProc {
		fmt.Printf("(correct: processor %d is the one with the planted odd activity mix)\n", oddProc)
	}
}

// oddProc is the processor given a deviant activity mix.
const oddProc = 5

func build() *trace.Cube {
	cube, err := trace.NewCube(
		[]string{"setup", "kernel", "teardown"},
		[]string{"computation", "communication", "synchronization"},
		procs,
	)
	if err != nil {
		log.Fatal(err)
	}
	set := func(i, j, p int, t float64) {
		if err := cube.Set(i, j, p, t); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		for p := 0; p < procs; p++ {
			// Balanced baseline mix per region.
			comp, comm := 10.0, 2.0
			if i == 1 { // kernel: expensive, mildly imbalanced computation
				comp = 40 + 2*float64(p%3)
			}
			if i == 2 { // teardown: cheap but wildly imbalanced sync
				comp, comm = 1, 0.2
			}
			// The odd processor communicates instead of computing in
			// every region: a mix anomaly only the processor view sees.
			if p == oddProc {
				comp, comm = comm, comp
			}
			set(i, 0, p, comp)
			set(i, 1, p, comm)
		}
	}
	// Teardown synchronization: tiny total, extreme spread.
	for p := 0; p < procs; p++ {
		t := 0.001
		if p == 0 {
			t = 0.4
		}
		set(2, 2, p, t)
	}
	return cube
}
