// characterize applies the Medea-style workload characterization
// (internal/fit) to the event traces of the simulated programs: for each
// activity it fits standard distribution families to the measured burst
// durations and reports the best fit, the step that precedes building a
// workload model of a traced program.
package main

import (
	"fmt"
	"log"

	"loadimb/internal/apps"
	"loadimb/internal/cfd"
	"loadimb/internal/fit"
	"loadimb/internal/mpi"
	"loadimb/internal/stats"
	"loadimb/internal/trace"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== CFD run: activity burst-length characterization ===")
	res, err := cfd.Run(cfd.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	characterize(res.Log)

	fmt.Println("\n=== Master-worker run (triangular tasks) ===")
	cfg := apps.DefaultMasterWorker()
	cfg.Shape = apps.TriangularTasks
	mw, err := apps.MasterWorker(cfg)
	if err != nil {
		log.Fatal(err)
	}
	characterize(mw.Log)

	fmt.Println("\nReading: the KS statistic is the max distance between the empirical")
	fmt.Println("and fitted CDFs — the smaller, the better the family describes the bursts.")

	fmt.Println("\n=== Phase structure: autocorrelation of the loop-1 burst series ===")
	detectPhases(res.Log)
}

// detectPhases recovers the CFD run's iterative structure from the trace
// alone: the rank-0 computation bursts repeat with the loop period, which
// the autocorrelation of the burst-length series exposes; windowing the
// log at that period then isolates one iteration for analysis.
func detectPhases(logData *trace.Log) {
	// Rank-0 computation bursts in time order.
	var bursts []float64
	logData.Each(func(e trace.Event) {
		if e.Rank == 0 && e.Activity == mpi.ActComputation {
			bursts = append(bursts, e.Duration())
		}
	})
	if len(bursts) < 16 {
		fmt.Println("too few bursts for phase detection")
		return
	}
	acf, err := stats.Autocorrelation(bursts, len(bursts)/2)
	if err != nil {
		log.Fatal(err)
	}
	period := stats.DominantPeriod(acf, 2)
	fmt.Printf("%d computation bursts on rank 0; dominant period = %d bursts (the %d-loop iteration)\n",
		len(bursts), period, period)

	// Window the first iteration of the run and aggregate it alone. The
	// instrumented part starts after the warmup, at the first event.
	first := logData.Span()
	logData.Each(func(e trace.Event) {
		if e.Start < first {
			first = e.Start
		}
	})
	iterSpan := (logData.Span() - first) / 30 // Defaults() runs 30 iterations
	window, err := logData.Window(first, first+iterSpan*1.5)
	if err != nil {
		log.Fatal(err)
	}
	cube, err := window.Aggregate(nil, mpi.Activities())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first-iteration window [%.3f s, %.3f s]: %d events, %d regions visible\n",
		first, first+iterSpan*1.5, window.Len(), cube.NumRegions())
}

func characterize(logData *trace.Log) {
	fmt.Printf("%-16s %7s %12s   %-34s %8s\n", "activity", "bursts", "mean (s)", "best fit", "KS")
	for _, activity := range mpi.Activities() {
		durations := logData.Durations(activity)
		if len(durations) < 8 {
			continue
		}
		// Zero-length bursts (instantaneous waits) carry no shape
		// information; characterize the positive ones.
		positive := durations[:0:0]
		total := 0.0
		for _, d := range durations {
			if d > 1e-12 {
				positive = append(positive, d)
				total += d
			}
		}
		if len(positive) < 8 {
			continue
		}
		best, err := fit.BestFit(positive)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %7d %12.5f   %-34s %8.4f\n",
			activity, len(positive), total/float64(len(positive)), best.Model.String(), best.KS)
	}
}
